"""Reusable MiniVM kernel builders.

The benchmark analogs compose these the way the originals compose BLAS-ish
loops: every helper emits one loop into a :class:`FunctionBuilder` and
returns the loop statement (whose ``.line`` is the loop's site for
ground-truth bookkeeping).

Dependence character of each kernel (what Table II ground truth relies on):

===================  ========================================================
kernel               carried dependences
===================  ========================================================
init / fill / copy   none — parallelizable
axpy / scale         none — parallelizable
sum/dot reduce       same-line RAW+WAW on the accumulator — reduction
stencil (dst!=src)   none — parallelizable
stencil in place     RAW across iterations — blocked
histogram_rank       RAW between distinct lines via indirection — blocked
prefix / recurrence  RAW across iterations — blocked
lcg_fill             none on memory (state in a register) — parallelizable
===================  ========================================================
"""

from __future__ import annotations

from repro.minivm.astnodes import Variable
from repro.minivm.builder import FunctionBuilder

#: LCG constants (glibc) for in-program pseudo-random data.
LCG_A = 1103515245
LCG_C = 12345
LCG_M = 1 << 31


def lcg_step(f: FunctionBuilder, seed_reg) -> None:
    """Advance a register-held LCG state: seed = (a*seed + c) mod m."""
    f.set(seed_reg, (seed_reg * LCG_A + LCG_C) % LCG_M)


def fill(f: FunctionBuilder, arr: Variable, n, value_of) -> object:
    """``for i: arr[i] = value_of(i)`` — parallelizable."""
    i = f.reg(f"i_fill_{arr.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(arr, i, value_of(i))
    return loop


def lcg_fill(f: FunctionBuilder, arr: Variable, n, seed: int) -> object:
    """Fill with LCG pseudo-randoms; the chain lives in a register, so the
    loop itself carries no memory dependence (like -O2'd rand inlining)."""
    s = f.reg(f"seed_{arr.name}")
    f.set(s, seed % LCG_M)
    i = f.reg(f"i_lcg_{arr.name}")
    with f.for_loop(i, 0, n) as loop:
        lcg_step(f, s)
        f.store(arr, i, s % 1000)
    return loop


def copy(f: FunctionBuilder, dst: Variable, src: Variable, n) -> object:
    i = f.reg(f"i_copy_{dst.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(dst, i, f.load(src, i))
    return loop


def axpy(f: FunctionBuilder, y: Variable, x: Variable, n, alpha) -> object:
    """``y[i] += alpha * x[i]`` — parallelizable (element-local RAW only)."""
    i = f.reg(f"i_axpy_{y.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(y, i, f.load(y, i) + alpha * f.load(x, i))
    return loop


def scale(f: FunctionBuilder, y: Variable, n, alpha) -> object:
    i = f.reg(f"i_scale_{y.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(y, i, f.load(y, i) * alpha)
    return loop


def sum_reduce(f: FunctionBuilder, acc: Variable, x: Variable, n) -> object:
    """``acc += x[i]`` — a recognizable reduction."""
    i = f.reg(f"i_sum_{acc.name}_{x.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(acc, None, f.load(acc) + f.load(x, i))
    return loop


def dot_reduce(
    f: FunctionBuilder, acc: Variable, x: Variable, y: Variable, n
) -> object:
    """``acc += x[i]*y[i]`` — reduction."""
    i = f.reg(f"i_dot_{acc.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(acc, None, f.load(acc) + f.load(x, i) * f.load(y, i))
    return loop


def stencil3(f: FunctionBuilder, dst: Variable, src: Variable, n) -> object:
    """Out-of-place 3-point smoothing — parallelizable."""
    i = f.reg(f"i_st_{dst.name}")
    with f.for_loop(i, 1, n - 1) as loop:
        f.store(
            dst,
            i,
            (f.load(src, i - 1) + f.load(src, i) * 2 + f.load(src, i + 1)) / 4,
        )
    return loop


def stencil3_inplace(f: FunctionBuilder, a: Variable, n) -> object:
    """Gauss-Seidel-style in-place sweep — carried RAW, blocked."""
    i = f.reg(f"i_gsi_{a.name}")
    with f.for_loop(i, 1, n - 1) as loop:
        f.store(a, i, (f.load(a, i - 1) + f.load(a, i + 1)) / 2)
    return loop


def recurrence(f: FunctionBuilder, a: Variable, n) -> object:
    """``a[i] = a[i-1] + a[i]`` — inherently sequential (prefix sum)."""
    i = f.reg(f"i_rec_{a.name}")
    with f.for_loop(i, 1, n) as loop:
        f.store(a, i, f.load(a, i - 1) + f.load(a, i))
    return loop


def histogram_rank(
    f: FunctionBuilder,
    counts: Variable,
    keys: Variable,
    out: Variable,
    n,
) -> object:
    """Counting-sort ranking: ``pos = counts[k]; out[pos] = i; counts[k]++``.

    The read and increment of ``counts`` sit on *different* source lines, so
    the carried RAW is not a same-line reduction — dependence analysis
    rightly refuses to parallelize it (the OpenMP original uses atomics and
    per-thread sub-histograms instead).
    """
    i = f.reg(f"i_hist_{counts.name}")
    k = f.reg(f"k_hist_{counts.name}")
    p = f.reg(f"p_hist_{counts.name}")
    with f.for_loop(i, 0, n) as loop:
        f.set(k, f.load(keys, i))
        f.set(p, f.load(counts, k))
        f.store(out, p, i)
        f.store(counts, k, f.reg(p.name) + 1)
    return loop


def histogram_accumulate(
    f: FunctionBuilder, counts: Variable, keys: Variable, n
) -> object:
    """Plain histogram ``counts[keys[i]] += 1`` on one line: every carried
    RAW on ``counts`` is a same-line self-update, so it classifies as an
    (array) reduction — matching OpenMP's ``reduction(+:q)`` treatment in
    NAS EP."""
    i = f.reg(f"i_hacc_{counts.name}")
    k = f.reg(f"k_hacc_{counts.name}")
    with f.for_loop(i, 0, n) as loop:
        f.set(k, f.load(keys, i))
        f.store(counts, k, f.load(counts, k) + 1)
    return loop


def gather(
    f: FunctionBuilder, dst: Variable, src: Variable, index: Variable, n
) -> object:
    """``dst[i] = src[index[i]]`` — parallelizable (reads may collide, writes
    are disjoint)."""
    i = f.reg(f"i_gth_{dst.name}")
    with f.for_loop(i, 0, n) as loop:
        f.store(dst, i, f.load(src, f.load(index, i)))
    return loop


def forward_substitution(
    f: FunctionBuilder, x: Variable, lower: Variable, n
) -> object:
    """Solve a bidiagonal system in place: ``x[i] -= lower[i] * x[i-1]`` —
    the sequential inner solve of ADI/SSOR sweeps; carried RAW, blocked."""
    i = f.reg(f"i_fs_{x.name}")
    with f.for_loop(i, 1, n) as loop:
        f.store(x, i, f.load(x, i) - f.load(lower, i) * f.load(x, i - 1))
    return loop
