"""Workload registry, metadata, and trace caching."""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.common.errors import WorkloadError
from repro.common.sourceloc import encode_location
from repro.minivm import Program, ScheduleConfig, run_program
from repro.trace import TraceBatch
from repro.trace.serialize import load_trace, save_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class WorkloadMeta:
    """Ground truth attached to one built program.

    ``annotated`` maps loop names to builder line numbers for every loop the
    (hypothetical) OpenMP version annotates — the "# OMP" column of
    Table II.  ``expected_identified`` names the subset a dependence-based
    analysis should find parallelizable on this input; annotated loops
    outside it carry dynamic dependences the OpenMP version handles by other
    means (atomics, restructuring), which is exactly why the paper's
    DiscoPoP column stays below the OMP column for IS/CG/FT.
    """

    annotated: dict[str, int] = field(default_factory=dict)
    expected_identified: set[str] = field(default_factory=set)
    file_id: int = 0

    def annotated_sites(self) -> dict[str, int]:
        """Loop name -> encoded header location."""
        return {
            name: encode_location(self.file_id, line)
            for name, line in self.annotated.items()
        }


#: A builder returns the program plus its ground-truth metadata.
Builder = Callable[[int], tuple[Program, WorkloadMeta]]
#: Parallel builders additionally take the target thread count.
ParBuilder = Callable[[int, int], tuple[Program, WorkloadMeta]]
#: Trace-level builders produce the batch directly (no MiniVM program);
#: they receive ``(scale, cache_dir)`` and manage their own disk reuse.
TraceBuilder = Callable[
    ["int", "str | Path | None"], tuple[TraceBatch, WorkloadMeta]
]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark analog."""

    name: str
    suite: str  # "nas" | "starbench" | "splash2x" | "amplified"
    build_seq: Builder | None = None
    build_par: ParBuilder | None = None
    #: Trace-level workload (amplified replay): yields the batch directly.
    build_trace: TraceBuilder | None = None
    default_scale: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.build_seq is None and self.build_trace is None:
            raise WorkloadError(
                f"workload {self.name!r} needs build_seq or build_trace"
            )

    @property
    def has_parallel_variant(self) -> bool:
        return self.build_par is not None


_REGISTRY: dict[str, Workload] = {}
_TRACE_CACHE: dict[tuple, tuple[TraceBatch, WorkloadMeta]] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    wl = _REGISTRY.get(name)
    if wl is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        )
    return wl


def workload_names(suite: str | None = None) -> list[str]:
    return sorted(
        name for name, wl in _REGISTRY.items() if suite is None or wl.suite == suite
    )


def workloads_in_suite(suite: str) -> list[Workload]:
    return [_REGISTRY[n] for n in workload_names(suite)]


def _trace_cache_path(cache_dir: str | Path, key: tuple) -> Path:
    name, variant, scale, threads, seed = key
    return Path(cache_dir) / f"{name}-{variant}-s{scale}-t{threads}-r{seed}.trace.npz"


def get_trace(
    name: str,
    variant: str = "seq",
    scale: int | None = None,
    threads: int = 4,
    seed: int = 0,
    with_meta: bool = False,
    cache_dir: "str | Path | None" = None,
    registry: "MetricsRegistry | None" = None,
    fastpath: bool = True,
):
    """Build, execute, and cache a workload trace.

    ``variant`` is ``"seq"`` or ``"par"`` (pthread-style multi-threaded
    target, Starbench/splash only).  Traces are cached per parameter tuple —
    the experiments profile each trace under many configurations, and target
    execution is independent of profiling (the paper's separation as well).

    ``cache_dir`` adds a second, on-disk layer under the in-memory dict:
    traces are saved/loaded via :mod:`repro.trace.serialize`, so benchmark
    runs across processes stop re-interpreting unchanged workloads.  The
    ``fastpath`` flag (affine producer fast path) is deliberately *not* part
    of the cache key — traces are bit-identical either way, which is exactly
    the oracle contract the tests enforce.  ``registry`` receives producer
    and ``producer.trace_cache_*`` counters when given.
    """
    wl = get_workload(name)
    scale = wl.default_scale if scale is None else scale
    key = (name, variant, scale, threads, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is not None:
        if registry is not None:
            registry.counter("producer.trace_cache_hits", layer="memory").inc()
        batch, meta = hit
        return (batch, meta) if with_meta else batch
    if wl.build_trace is not None:
        # Trace-level workload: the builder yields the batch directly
        # (possibly an mmap-backed spill it caches under ``cache_dir``).
        if variant != "seq":
            raise WorkloadError(f"{name!r} is trace-level; only variant='seq'")
        batch, meta = wl.build_trace(scale, cache_dir)
        if cache_dir is not None:
            enforce_cache_limit(cache_dir, registry=registry)
        _TRACE_CACHE[key] = (batch, meta)
        return (batch, meta) if with_meta else batch
    # Metadata is cheap and never serialized with the trace, so the program
    # is always (re)built; only execution is skipped on a disk hit.
    if variant == "seq":
        assert wl.build_seq is not None
        program, meta = wl.build_seq(scale)
        schedule = None
    elif variant == "par":
        if wl.build_par is None:
            raise WorkloadError(f"{name!r} has no parallel variant")
        program, meta = wl.build_par(scale, threads)
        schedule = ScheduleConfig(policy="roundrobin", seed=seed)
    else:
        raise WorkloadError(f"unknown variant {variant!r} (seq|par)")
    path = _trace_cache_path(cache_dir, key) if cache_dir is not None else None
    if path is not None and path.exists():
        batch = load_trace(path)
        os.utime(path)  # LRU freshness: a hit makes the entry recent again
        if registry is not None:
            registry.counter("producer.trace_cache_hits", layer="disk").inc()
    else:
        batch = run_program(
            program, schedule=schedule, fastpath=fastpath, registry=registry
        )
        if registry is not None:
            registry.counter("producer.trace_cache_misses").inc()
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_trace(batch, path)
            enforce_cache_limit(cache_dir, registry=registry)
    _TRACE_CACHE[key] = (batch, meta)
    return (batch, meta) if with_meta else batch


#: Disk-cache size cap (bytes); ``None`` disables eviction entirely.
_CACHE_LIMIT_BYTES: int | None = None


def set_trace_cache_limit(limit_bytes: int | None) -> None:
    """Install the process-wide disk trace-cache cap (``None`` = unlimited)."""
    global _CACHE_LIMIT_BYTES
    if limit_bytes is not None and limit_bytes < 0:
        raise WorkloadError("trace cache limit must be >= 0")
    _CACHE_LIMIT_BYTES = limit_bytes


def _cache_entries(d: Path) -> list[tuple[float, int, Path]]:
    """(mtime, bytes, path) per cached trace — npz files and spill dirs."""
    entries: list[tuple[float, int, Path]] = []
    for p in d.glob("*.trace.npz"):
        st = p.stat()
        entries.append((st.st_mtime, st.st_size, p))
    for p in d.glob("*.trace.spill"):
        if not p.is_dir():
            continue
        size = sum(f.stat().st_size for f in p.iterdir() if f.is_file())
        entries.append((p.stat().st_mtime, size, p))
    return entries


def enforce_cache_limit(
    cache_dir: "str | Path",
    limit_bytes: "int | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> int:
    """Evict least-recently-used cached traces until the cap is met.

    ``limit_bytes`` overrides the process-wide limit installed by
    :func:`set_trace_cache_limit`; with neither set this is a no-op.  Disk
    hits refresh an entry's mtime (``os.utime``), so recency tracks use,
    not creation.  Returns the number of entries evicted and counts them on
    ``producer.cache_evictions``.
    """
    limit = _CACHE_LIMIT_BYTES if limit_bytes is None else limit_bytes
    d = Path(cache_dir)
    if limit is None or not d.is_dir():
        return 0
    entries = sorted(_cache_entries(d))  # oldest mtime first
    total = sum(size for _, size, _ in entries)
    evicted = 0
    for _, size, path in entries:
        if total <= limit:
            break
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink(missing_ok=True)
        total -= size
        evicted += 1
    if evicted and registry is not None:
        registry.counter("producer.cache_evictions").inc(evicted)
    return evicted


def clear_trace_cache(cache_dir: "str | Path | None" = None) -> int:
    """Drop the in-memory layer; with ``cache_dir``, also delete every
    ``*.trace.npz`` file and ``*.trace.spill`` directory there.  Returns
    the number of entries removed."""
    _TRACE_CACHE.clear()
    removed = 0
    if cache_dir is not None:
        d = Path(cache_dir)
        if d.is_dir():
            for p in sorted(d.glob("*.trace.npz")):
                p.unlink()
                removed += 1
            for p in sorted(d.glob("*.trace.spill")):
                if p.is_dir():
                    shutil.rmtree(p, ignore_errors=True)
                    removed += 1
    return removed
