"""Workload registry, metadata, and trace caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.common.errors import WorkloadError
from repro.common.sourceloc import encode_location
from repro.minivm import Program, ScheduleConfig, run_program
from repro.trace import TraceBatch
from repro.trace.serialize import load_trace, save_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class WorkloadMeta:
    """Ground truth attached to one built program.

    ``annotated`` maps loop names to builder line numbers for every loop the
    (hypothetical) OpenMP version annotates — the "# OMP" column of
    Table II.  ``expected_identified`` names the subset a dependence-based
    analysis should find parallelizable on this input; annotated loops
    outside it carry dynamic dependences the OpenMP version handles by other
    means (atomics, restructuring), which is exactly why the paper's
    DiscoPoP column stays below the OMP column for IS/CG/FT.
    """

    annotated: dict[str, int] = field(default_factory=dict)
    expected_identified: set[str] = field(default_factory=set)
    file_id: int = 0

    def annotated_sites(self) -> dict[str, int]:
        """Loop name -> encoded header location."""
        return {
            name: encode_location(self.file_id, line)
            for name, line in self.annotated.items()
        }


#: A builder returns the program plus its ground-truth metadata.
Builder = Callable[[int], tuple[Program, WorkloadMeta]]
#: Parallel builders additionally take the target thread count.
ParBuilder = Callable[[int, int], tuple[Program, WorkloadMeta]]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark analog."""

    name: str
    suite: str  # "nas" | "starbench" | "splash2x"
    build_seq: Builder
    build_par: ParBuilder | None = None
    default_scale: int = 1
    description: str = ""

    @property
    def has_parallel_variant(self) -> bool:
        return self.build_par is not None


_REGISTRY: dict[str, Workload] = {}
_TRACE_CACHE: dict[tuple, tuple[TraceBatch, WorkloadMeta]] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    wl = _REGISTRY.get(name)
    if wl is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        )
    return wl


def workload_names(suite: str | None = None) -> list[str]:
    return sorted(
        name for name, wl in _REGISTRY.items() if suite is None or wl.suite == suite
    )


def workloads_in_suite(suite: str) -> list[Workload]:
    return [_REGISTRY[n] for n in workload_names(suite)]


def _trace_cache_path(cache_dir: str | Path, key: tuple) -> Path:
    name, variant, scale, threads, seed = key
    return Path(cache_dir) / f"{name}-{variant}-s{scale}-t{threads}-r{seed}.trace.npz"


def get_trace(
    name: str,
    variant: str = "seq",
    scale: int | None = None,
    threads: int = 4,
    seed: int = 0,
    with_meta: bool = False,
    cache_dir: "str | Path | None" = None,
    registry: "MetricsRegistry | None" = None,
    fastpath: bool = True,
):
    """Build, execute, and cache a workload trace.

    ``variant`` is ``"seq"`` or ``"par"`` (pthread-style multi-threaded
    target, Starbench/splash only).  Traces are cached per parameter tuple —
    the experiments profile each trace under many configurations, and target
    execution is independent of profiling (the paper's separation as well).

    ``cache_dir`` adds a second, on-disk layer under the in-memory dict:
    traces are saved/loaded via :mod:`repro.trace.serialize`, so benchmark
    runs across processes stop re-interpreting unchanged workloads.  The
    ``fastpath`` flag (affine producer fast path) is deliberately *not* part
    of the cache key — traces are bit-identical either way, which is exactly
    the oracle contract the tests enforce.  ``registry`` receives producer
    and ``producer.trace_cache_*`` counters when given.
    """
    wl = get_workload(name)
    scale = wl.default_scale if scale is None else scale
    key = (name, variant, scale, threads, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is not None:
        if registry is not None:
            registry.counter("producer.trace_cache_hits", layer="memory").inc()
        batch, meta = hit
        return (batch, meta) if with_meta else batch
    # Metadata is cheap and never serialized with the trace, so the program
    # is always (re)built; only execution is skipped on a disk hit.
    if variant == "seq":
        program, meta = wl.build_seq(scale)
        schedule = None
    elif variant == "par":
        if wl.build_par is None:
            raise WorkloadError(f"{name!r} has no parallel variant")
        program, meta = wl.build_par(scale, threads)
        schedule = ScheduleConfig(policy="roundrobin", seed=seed)
    else:
        raise WorkloadError(f"unknown variant {variant!r} (seq|par)")
    path = _trace_cache_path(cache_dir, key) if cache_dir is not None else None
    if path is not None and path.exists():
        batch = load_trace(path)
        if registry is not None:
            registry.counter("producer.trace_cache_hits", layer="disk").inc()
    else:
        batch = run_program(
            program, schedule=schedule, fastpath=fastpath, registry=registry
        )
        if registry is not None:
            registry.counter("producer.trace_cache_misses").inc()
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_trace(batch, path)
    _TRACE_CACHE[key] = (batch, meta)
    return (batch, meta) if with_meta else batch


def clear_trace_cache(cache_dir: "str | Path | None" = None) -> int:
    """Drop the in-memory layer; with ``cache_dir``, also delete every
    ``*.trace.npz`` file there.  Returns the number of files removed."""
    _TRACE_CACHE.clear()
    removed = 0
    if cache_dir is not None:
        d = Path(cache_dir)
        if d.is_dir():
            for p in sorted(d.glob("*.trace.npz")):
                p.unlink()
                removed += 1
    return removed
