"""Workload registry, metadata, and trace caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import WorkloadError
from repro.common.sourceloc import encode_location
from repro.minivm import Program, ScheduleConfig, run_program
from repro.trace import TraceBatch


@dataclass
class WorkloadMeta:
    """Ground truth attached to one built program.

    ``annotated`` maps loop names to builder line numbers for every loop the
    (hypothetical) OpenMP version annotates — the "# OMP" column of
    Table II.  ``expected_identified`` names the subset a dependence-based
    analysis should find parallelizable on this input; annotated loops
    outside it carry dynamic dependences the OpenMP version handles by other
    means (atomics, restructuring), which is exactly why the paper's
    DiscoPoP column stays below the OMP column for IS/CG/FT.
    """

    annotated: dict[str, int] = field(default_factory=dict)
    expected_identified: set[str] = field(default_factory=set)
    file_id: int = 0

    def annotated_sites(self) -> dict[str, int]:
        """Loop name -> encoded header location."""
        return {
            name: encode_location(self.file_id, line)
            for name, line in self.annotated.items()
        }


#: A builder returns the program plus its ground-truth metadata.
Builder = Callable[[int], tuple[Program, WorkloadMeta]]
#: Parallel builders additionally take the target thread count.
ParBuilder = Callable[[int, int], tuple[Program, WorkloadMeta]]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark analog."""

    name: str
    suite: str  # "nas" | "starbench" | "splash2x"
    build_seq: Builder
    build_par: ParBuilder | None = None
    default_scale: int = 1
    description: str = ""

    @property
    def has_parallel_variant(self) -> bool:
        return self.build_par is not None


_REGISTRY: dict[str, Workload] = {}
_TRACE_CACHE: dict[tuple, tuple[TraceBatch, WorkloadMeta]] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    wl = _REGISTRY.get(name)
    if wl is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        )
    return wl


def workload_names(suite: str | None = None) -> list[str]:
    return sorted(
        name for name, wl in _REGISTRY.items() if suite is None or wl.suite == suite
    )


def workloads_in_suite(suite: str) -> list[Workload]:
    return [_REGISTRY[n] for n in workload_names(suite)]


def get_trace(
    name: str,
    variant: str = "seq",
    scale: int | None = None,
    threads: int = 4,
    seed: int = 0,
    with_meta: bool = False,
):
    """Build, execute, and cache a workload trace.

    ``variant`` is ``"seq"`` or ``"par"`` (pthread-style multi-threaded
    target, Starbench/splash only).  Traces are cached per parameter tuple —
    the experiments profile each trace under many configurations, and target
    execution is independent of profiling (the paper's separation as well).
    """
    wl = get_workload(name)
    scale = wl.default_scale if scale is None else scale
    key = (name, variant, scale, threads, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is None:
        if variant == "seq":
            program, meta = wl.build_seq(scale)
            batch = run_program(program)
        elif variant == "par":
            if wl.build_par is None:
                raise WorkloadError(f"{name!r} has no parallel variant")
            program, meta = wl.build_par(scale, threads)
            batch = run_program(
                program, schedule=ScheduleConfig(policy="roundrobin", seed=seed)
            )
        else:
            raise WorkloadError(f"unknown variant {variant!r} (seq|par)")
        hit = (batch, meta)
        _TRACE_CACHE[key] = hit
    batch, meta = hit
    return (batch, meta) if with_meta else batch


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()
