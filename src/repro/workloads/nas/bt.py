"""BT — block tridiagonal solver analog.

NAS BT advances three coupled solution components through directional line
solves (the real code couples 5x5 blocks; three scalar components preserve
the multi-array sweep structure).  All annotated loops parallelize across
grid lines, matching Table II's 30/30 for BT.
"""

from repro.workloads.base import Workload, register
from repro.workloads.nas._adi import build_adi


def build(scale: int = 1):
    return build_adi("bt", n=12 * scale, components=3, sweeps=1)


register(
    Workload(
        name="bt",
        suite="nas",
        build_seq=build,
        description="block-tridiagonal ADI solver, 3 coupled components",
    )
)
