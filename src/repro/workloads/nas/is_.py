"""IS — integer (bucket) sort analog.

Counting sort over small keys: key generation and the final permutation
copy parallelize; the histogram *ranking* loop (read-position / scatter /
increment across three lines) and the prefix sum are genuinely sequential
at the dependence level even though NAS IS's OpenMP version annotates the
ranking with atomics and private sub-histograms — the paper's "8 of 11"
identified for IS comes from exactly this gap.
"""

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import fill, gather, histogram_rank, lcg_fill, recurrence


def build(scale: int = 1):
    n_keys = 3000 * scale
    max_key = 256
    b = ProgramBuilder("is")
    keys = b.global_array("keys", n_keys)
    counts = b.global_array("counts", max_key)
    ranks = b.global_array("ranks", n_keys)
    sorted_keys = b.global_array("sorted_keys", n_keys)
    check = b.global_scalar("check")

    annotated: dict[str, int] = {}
    identified: set[str] = set()

    def mark(key, loop, parallel=True):
        annotated[key] = loop.line
        if parallel:
            identified.add(key)

    with b.function("main") as f:
        kf = lcg_fill(f, keys, n_keys, seed=314159)
        mark("gen_keys", kf)
        # trim keys into range on their own line (parallel elementwise)
        i = f.reg("i_trim")
        with f.for_loop(i, 0, n_keys) as trim:
            f.store(keys, i, f.load(keys, i) % max_key)
        mark("trim_keys", trim)
        cz = fill(f, counts, max_key, lambda r: 0)
        mark("zero_counts", cz)
        # ranking with a shared histogram: annotated (OMP uses atomics),
        # but dynamically carried -> not identified
        hr = histogram_rank(f, counts, keys, ranks, n_keys)
        mark("rank_keys", hr, parallel=False)
        # prefix sum over buckets: sequential, annotated in NAS via
        # work-sharing tricks -> not identified
        ps = recurrence(f, counts, max_key)
        mark("bucket_prefix", ps, parallel=False)
        # permutation copy: writes disjoint (ranks is a permutation)
        gt = gather(f, sorted_keys, keys, ranks, n_keys)
        mark("permute", gt)
        # verification reduction
        j = f.reg("i_ver")
        with f.for_loop(j, 0, n_keys) as ver:
            f.store(check, None, f.load(check) + f.load(sorted_keys, j))
        mark("verify", ver)
        # sortedness check (NAS IS's full_verify): counts inversions of
        # adjacent elements — reads overlap across iterations but no loop-
        # carried flow, and the counter reduces: parallelizable.
        k2 = f.reg("i_srt")
        with f.for_loop(k2, 1, n_keys) as srt:
            with f.if_(f.load(sorted_keys, k2 - 1).gt(f.load(sorted_keys, k2))):
                f.store(check, None, f.load(check) + 1_000_000)
        mark("full_verify", srt)

    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


register(
    Workload(
        name="is",
        suite="nas",
        build_seq=build,
        description="counting sort; shared-histogram ranking blocks",
    )
)
