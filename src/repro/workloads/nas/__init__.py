"""NAS Parallel Benchmark analogs (BT, SP, LU, IS, EP, CG, MG, FT).

Each module builds a miniature-but-real version of its kernel's algorithm in
MiniVM and registers it with per-loop OpenMP ground truth.  Registration
happens on import.
"""

from repro.workloads.nas import bt, sp, lu, is_, ep, cg, mg, ft  # noqa: F401

__all__ = ["bt", "sp", "lu", "is_", "ep", "cg", "mg", "ft"]
