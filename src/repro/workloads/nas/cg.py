"""CG — conjugate gradient analog.

A real CG iteration over a banded sparse operator: sparse matvec, two dot
products, three axpy-style vector updates per iteration, driven by an outer
(sequential, unannotated) iteration loop.  The annotated loops mirror NAS
CG's OpenMP regions; like the paper's 9-of-16, some annotated loops are not
dynamically identifiable — here the matvec accumulates each row into a
shared scratch scalar across two lines (the NAS original uses privatized
``sum`` variables; a dependence profiler without privatization insight for
that temp must refuse), and the pipelined norm-chasing update reads its
neighbour.
"""

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import axpy, copy, dot_reduce, fill, lcg_fill


def build(scale: int = 1):
    n = 220 * scale
    band = 4
    iters = 6
    b = ProgramBuilder("cg")
    x = b.global_array("x", n)
    r = b.global_array("r", n)
    p = b.global_array("p", n)
    q = b.global_array("q", n)
    coef = b.global_array("coef", n)
    rho = b.global_scalar("rho")
    alpha_den = b.global_scalar("alpha_den")
    rowsum = b.global_scalar("rowsum")  # shared matvec scratch (like NAS sum)
    norm = b.global_array("norm", 1)

    annotated: dict[str, int] = {}
    identified: set[str] = set()

    def mark(key, loop, parallel=True):
        annotated[key] = loop.line
        if parallel:
            identified.add(key)

    with b.function("main") as f:
        mark("init_coef", lcg_fill(f, coef, n, seed=20111))
        mark("init_x", fill(f, x, n, lambda i: 1))
        mark("init_r", copy(f, r, x, n))
        mark("init_p", copy(f, p, r, n))

        it = f.reg("it")
        i = f.reg("i")
        k = f.reg("k")
        with f.for_loop(it, 0, iters):  # outer CG iteration: unannotated
            # sparse matvec q = A p over a band; each row accumulates into a
            # shared scratch scalar that is re-initialized per row, so the
            # scratch carries only WAR/WAW across rows — privatizable, and
            # NAS indeed privatizes it: annotated AND identified.
            with f.for_loop(i, band, n - band) as mv:
                f.store(rowsum, None, f.load(p, i) * 4)
                with f.for_loop(k, 1, band):
                    f.store(
                        rowsum,
                        None,
                        f.load(rowsum)
                        + f.load(coef, i) * (f.load(p, i - k) + f.load(p, i + k)) / 512,
                    )
                f.store(q, i, f.load(rowsum))
            if "matvec" not in annotated:
                mark("matvec", mv)

            # Incomplete-factorization preconditioner sweep: q[i] depends on
            # q[i-1] — a forward substitution the OpenMP version handles with
            # level scheduling; plain dependence analysis must refuse.
            with f.for_loop(i, 1, n) as pc:
                f.store(q, i, f.load(q, i) - f.load(q, i - 1) / 64)
            if "precond_forward" not in annotated:
                mark("precond_forward", pc, parallel=False)

            # rho = r . r  (reduction, annotated, identified)
            f.store(rho, None, 0)
            dr = dot_reduce(f, rho, r, r, n)
            if "rho_dot" not in annotated:
                mark("rho_dot", dr)
            # alpha_den = p . q
            f.store(alpha_den, None, 0)
            dq = dot_reduce(f, alpha_den, p, q, n)
            if "pq_dot" not in annotated:
                mark("pq_dot", dq)

            # x += p/8 ; r -= q/8 ; p = r + p/4 (elementwise, annotated)
            ax = axpy(f, x, p, n, 0.125)
            if "update_x" not in annotated:
                mark("update_x", ax)
            ar = axpy(f, r, q, n, -0.125)
            if "update_r" not in annotated:
                mark("update_r", ar)
            with f.for_loop(i, 0, n) as up:
                f.store(p, i, f.load(r, i) + f.load(p, i) / 4)
            if "update_p" not in annotated:
                mark("update_p", up)

        # Final residual-chasing smoother: annotated in the OpenMP version
        # as a pipelined loop; reads the previous element -> blocked.
        with f.for_loop(i, 1, n) as sm:
            f.store(r, i, (f.load(r, i) + f.load(r, i - 1)) / 2)
        mark("residual_smooth", sm, parallel=False)
        # norm reduction (annotated, identified)
        f.store(norm, 0, 0)
        with f.for_loop(i, 0, n) as nm:
            f.store(norm, 0, f.load(norm, 0) + f.load(r, i) * f.load(r, i))
        mark("norm", nm)

    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


register(
    Workload(
        name="cg",
        suite="nas",
        build_seq=build,
        description="conjugate gradient with banded sparse matvec",
    )
)
