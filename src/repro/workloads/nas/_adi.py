"""Shared ADI-style solver scaffold for the BT/SP/LU analogs.

The three NAS pseudo-application benchmarks all advance a structured-grid
solution through directional sweeps: compute a right-hand side with
neighbour stencils, then solve independent line systems along each grid
direction.  The parallel structure is identical — sweeps parallelize across
lines, each line's substitution is sequential — and the OpenMP versions
annotate exactly the across-line loops.  The builders here reproduce that
skeleton on an ``n x n`` grid; the per-benchmark modules vary the number of
coupled components (BT's blocks), the substitution passes (SP's forward +
backward), and the SSOR wavefront (LU).
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import WorkloadMeta
from repro.workloads.kernels import lcg_fill


def build_adi(
    name: str,
    n: int,
    components: int = 1,
    backward_pass: bool = False,
    ssor_wavefront: bool = False,
    sweeps: int = 1,
):
    """Construct an ADI solver analog; returns (Program, WorkloadMeta)."""
    b = ProgramBuilder(name)
    size = n * n
    us = [b.global_array(f"u{c}", size) for c in range(components)]
    rhs = [b.global_array(f"rhs{c}", size) for c in range(components)]
    lower = b.global_array("lower", size)
    annotated: dict[str, int] = {}
    identified: set[str] = set()

    def mark(key: str, loop, parallel: bool = True) -> None:
        annotated[key] = loop.line
        if parallel:
            identified.add(key)

    with b.function("main") as f:
        for c, u in enumerate(us):
            mark(f"init_u{c}", lcg_fill(f, u, size, seed=7 + c))
        mark("init_lower", lcg_fill(f, lower, size, seed=101))

        for s in range(sweeps):
            sfx = f"_s{s}" if sweeps > 1 else ""
            # --- RHS: neighbour stencils in both directions (parallel) ---
            for c, (u, r) in enumerate(zip(us, rhs)):
                j = f.reg(f"j_rx{c}{sfx}")
                i = f.reg(f"i_rx{c}{sfx}")
                with f.for_loop(j, 0, n) as rx:
                    with f.for_loop(i, 1, n - 1):
                        base = j * n + i
                        f.store(
                            r,
                            base,
                            f.load(u, base - 1)
                            - 2 * f.load(u, base)
                            + f.load(u, base + 1),
                        )
                mark(f"rhs_x{c}{sfx}", rx)
                j2 = f.reg(f"j_ry{c}{sfx}")
                i2 = f.reg(f"i_ry{c}{sfx}")
                with f.for_loop(j2, 1, n - 1) as ry:
                    with f.for_loop(i2, 0, n):
                        base = j2 * n + i2
                        f.store(
                            r,
                            base,
                            f.load(r, base)
                            + f.load(u, base - n)
                            - 2 * f.load(u, base)
                            + f.load(u, base + n),
                        )
                mark(f"rhs_y{c}{sfx}", ry)

            # --- x_solve: one line system per row (parallel across rows,
            #     sequential along the row) ---
            for c, r in enumerate(rhs):
                j = f.reg(f"j_xs{c}{sfx}")
                i = f.reg(f"i_xs{c}{sfx}")
                with f.for_loop(j, 0, n) as xs:
                    with f.for_loop(i, 1, n):
                        base = j * n + i
                        f.store(
                            r,
                            base,
                            f.load(r, base)
                            - f.load(lower, base) * f.load(r, base - 1) / 4096,
                        )
                mark(f"x_solve{c}{sfx}", xs)
                if backward_pass:
                    jb = f.reg(f"j_xb{c}{sfx}")
                    ib = f.reg(f"i_xb{c}{sfx}")
                    with f.for_loop(jb, 0, n) as xb:
                        with f.for_loop(ib, n - 2, -1, step=-1):
                            base = jb * n + ib
                            f.store(
                                r,
                                base,
                                f.load(r, base)
                                - f.load(lower, base) * f.load(r, base + 1) / 4096,
                            )
                    mark(f"x_back{c}{sfx}", xb)

            # --- y_solve: per column (parallel across columns) ---
            for c, r in enumerate(rhs):
                i = f.reg(f"i_ys{c}{sfx}")
                j = f.reg(f"j_ys{c}{sfx}")
                with f.for_loop(i, 0, n) as ys:
                    with f.for_loop(j, 1, n):
                        base = j * n + i
                        f.store(
                            r,
                            base,
                            f.load(r, base)
                            - f.load(lower, base) * f.load(r, base - n) / 4096,
                        )
                mark(f"y_solve{c}{sfx}", ys)

            if ssor_wavefront:
                # LU's SSOR lower-triangular sweep: u[j,i] depends on west
                # and north neighbours of the SAME array — a wavefront.  The
                # OpenMP version pipelines it; plain dependence analysis
                # must refuse, so it is annotated but not identifiable.
                jw = f.reg(f"j_wf{sfx}")
                iw = f.reg(f"i_wf{sfx}")
                with f.for_loop(jw, 1, n) as wf:
                    with f.for_loop(iw, 1, n):
                        base = jw * n + iw
                        f.store(
                            us[0],
                            base,
                            f.load(us[0], base)
                            + (f.load(us[0], base - 1) + f.load(us[0], base - n))
                            / 8192,
                        )
                mark(f"ssor_lower{sfx}", wf, parallel=False)

            # --- add: fold the solved rhs back into u (parallel) ---
            for c, (u, r) in enumerate(zip(us, rhs)):
                k = f.reg(f"k_add{c}{sfx}")
                with f.for_loop(k, 0, size) as add:
                    f.store(u, k, f.load(u, k) + f.load(r, k) / 2048)
                mark(f"add{c}{sfx}", add)

    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta
