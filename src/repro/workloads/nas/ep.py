"""EP — embarrassingly parallel analog.

Generates pseudo-random pairs, accepts those inside the unit square's
"ring", accumulates coordinate sums, and bins acceptances by annulus —
NAS EP's structure with the LCG chain in registers (as ``-O2`` keeps it).
The single annotated loop is the main Gaussian-pair loop; its accumulators
(``sx``, ``sy``, ``q``) are same-line self-updates, i.e. recognizable
reductions, so it is identified (Table II: 1/1).
"""

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import LCG_M, lcg_step


def build(scale: int = 1):
    n_pairs = 4000 * scale
    b = ProgramBuilder("ep")
    sx = b.global_scalar("sx")
    sy = b.global_scalar("sy")
    q = b.global_array("q", 10)

    with b.function("main") as f:
        seed = f.reg("seed")
        f.set(seed, 271828183 % LCG_M)
        i = f.reg("i")
        x = f.reg("x")
        y = f.reg("y")
        binr = f.reg("binr")
        with f.for_loop(i, 0, n_pairs) as main_loop:
            lcg_step(f, seed)
            f.set(x, (seed % 2000) - 1000)
            lcg_step(f, seed)
            f.set(y, (seed % 2000) - 1000)
            # accept pairs inside the disc of radius 1000
            with f.if_((x * x + y * y).le(1000 * 1000)):
                f.store(sx, None, f.load(sx) + x)
                f.store(sy, None, f.load(sy) + y)
                # annulus index 0..9 by distance
                f.set(binr, (x * x + y * y) * 10 // (1000 * 1000 + 1))
                f.store(q, binr, f.load(q, binr) + 1)

    meta = WorkloadMeta(
        annotated={"gaussian_pairs": main_loop.line},
        expected_identified={"gaussian_pairs"},
    )
    return b.build(), meta


register(
    Workload(
        name="ep",
        suite="nas",
        build_seq=build,
        description="random-pair generation with reduction accumulators",
    )
)
