"""SP — scalar pentadiagonal solver analog.

SP's line systems are pentadiagonal: each direction needs a forward and a
backward substitution pass.  Two components, both passes annotated; every
annotated loop parallelizes across lines (Table II: 34/34).
"""

from repro.workloads.base import Workload, register
from repro.workloads.nas._adi import build_adi


def build(scale: int = 1):
    return build_adi("sp", n=12 * scale, components=2, backward_pass=True, sweeps=1)


register(
    Workload(
        name="sp",
        suite="nas",
        build_seq=build,
        description="scalar-pentadiagonal ADI solver with backward passes",
    )
)
