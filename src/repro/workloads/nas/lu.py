"""LU — SSOR solver analog.

LU applies symmetric successive over-relaxation: besides the parallel RHS
and line-solve loops it performs lower/upper triangular sweeps whose
wavefront dependences (west + north neighbours of the same array) defeat
plain loop parallelization — the OpenMP original pipelines them.  The
wavefront loop is annotated but not identifiable, mirroring how the paper's
detection rests on dynamic dependences.
"""

from repro.workloads.base import Workload, register
from repro.workloads.nas._adi import build_adi


def build(scale: int = 1):
    return build_adi("lu", n=12 * scale, components=2, ssor_wavefront=True, sweeps=1)


register(
    Workload(
        name="lu",
        suite="nas",
        build_seq=build,
        description="SSOR solver with a pipelined wavefront sweep",
    )
)
