"""FT — FFT analog.

A real radix-2 decimation-in-time FFT on complex data (separate re/im
arrays): bit-reversal permutation, per-stage butterfly sweeps, and a
checksum reduction.  The twiddle factors are computed by the classic
multiplicative *recurrence* ``w[k] = w[k-1] * w1`` — carried, annotated
(the OpenMP original replaces it with a precomputed table), and therefore
not dynamically identifiable; everything else parallelizes, giving FT its
paper-like identified/annotated gap (Table II: 7/8).
"""

import math

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill


def build(scale: int = 1):
    log_n = 7 + (scale - 1)
    n = 1 << log_n
    b = ProgramBuilder("ft")
    re = b.global_array("re", n)
    im = b.global_array("im", n)
    wre = b.global_array("wre", n // 2)
    wim = b.global_array("wim", n // 2)
    rev = b.global_array("rev", n)
    checksum = b.global_scalar("checksum")

    annotated: dict[str, int] = {}
    identified: set[str] = set()

    def mark(key, loop, parallel=True):
        annotated[key] = loop.line
        if parallel:
            identified.add(key)

    with b.function("main") as f:
        mark("init_re", lcg_fill(f, re, n, seed=42))
        mark("init_im", lcg_fill(f, im, n, seed=43))

        # Twiddle recurrence w[k] = w[k-1]*w1 (annotated, blocked).
        c1, s1 = math.cos(2 * math.pi / n), math.sin(2 * math.pi / n)
        f.store(wre, 0, 1.0)
        f.store(wim, 0, 0.0)
        k = f.reg("k_tw")
        with f.for_loop(k, 1, n // 2) as tw:
            f.store(wre, k, f.load(wre, k - 1) * c1 - f.load(wim, k - 1) * s1)
            f.store(wim, k, f.load(wre, k - 1) * s1 + f.load(wim, k - 1) * c1)
        mark("twiddle_recurrence", tw, parallel=False)

        # Bit-reversal index table (pure function of i: parallel).
        i = f.reg("i_rev")
        rbit = f.reg("rbit")
        t = f.reg("t_rev")
        with f.for_loop(i, 0, n) as rv:
            f.set(rbit, 0)
            f.set(t, i)
            for _ in range(log_n):
                f.set(rbit, (rbit << 1) | (t & 1))
                f.set(t, t >> 1)
            f.store(rev, i, rbit)
        mark("bit_reverse_table", rv)

        # Permutation swap pass: each unordered pair touched once (parallel).
        j = f.reg("j_sw")
        a = f.reg("a_sw")
        bb = f.reg("b_sw")
        with f.for_loop(j, 0, n) as sw:
            f.set(a, f.load(rev, j))
            with f.if_(f.reg("a_sw").gt(j)):
                f.set(bb, f.load(re, j))
                f.store(re, j, f.load(re, a))
                f.store(re, a, bb)
                f.set(bb, f.load(im, j))
                f.store(im, j, f.load(im, a))
                f.store(im, a, bb)
        mark("bit_reverse_swap", sw)

        # Butterfly stages: disjoint pairs within a stage -> parallel.
        for s in range(1, log_n + 1):
            half = 1 << (s - 1)
            stride = n >> s  # twiddle index stride at this stage
            g = f.reg(f"g_s{s}")
            tr = f.reg(f"tr_s{s}")
            ti = f.reg(f"ti_s{s}")
            lo = f.reg(f"lo_s{s}")
            hi = f.reg(f"hi_s{s}")
            wk = f.reg(f"wk_s{s}")
            with f.for_loop(g, 0, n // 2) as st:
                # g enumerates butterflies: block = g // half, pos = g % half
                f.set(lo, (g // half) * (half * 2) + (g % half))
                f.set(hi, f.reg(f"lo_s{s}") + half)
                f.set(wk, (g % half) * stride)
                f.set(
                    tr,
                    f.load(re, hi) * f.load(wre, wk)
                    - f.load(im, hi) * f.load(wim, wk),
                )
                f.set(
                    ti,
                    f.load(re, hi) * f.load(wim, wk)
                    + f.load(im, hi) * f.load(wre, wk),
                )
                f.store(re, hi, f.load(re, lo) - tr)
                f.store(im, hi, f.load(im, lo) - ti)
                f.store(re, lo, f.load(re, lo) + tr)
                f.store(im, lo, f.load(im, lo) + ti)
            mark(f"butterfly_stage_{s}", st)

        # Checksum reduction (annotated, identified).
        c = f.reg("i_ck")
        with f.for_loop(c, 0, n) as ck:
            f.store(
                checksum,
                None,
                f.load(checksum) + f.load(re, c) * f.load(re, c)
                + f.load(im, c) * f.load(im, c),
            )
        mark("checksum", ck)

    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


register(
    Workload(
        name="ft",
        suite="nas",
        build_seq=build,
        description="radix-2 FFT with twiddle recurrence",
    )
)
