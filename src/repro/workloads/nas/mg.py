"""MG — multigrid analog.

Two V-cycles over a 1D hierarchy with a residual-norm check between them:
out-of-place Jacobi smoothing, residual restriction to the coarse grid,
prolongation back, and the L2 norm of the correction as a reduction.  Every
loop either writes a different array than it reads or reduces into a
same-line accumulator, so all annotated loops parallelize (Table II: 14/14
for MG).
"""

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill, stencil3

CYCLES = 2


def build(scale: int = 1):
    n0 = 512 * scale
    levels = 3
    b = ProgramBuilder("mg")
    sizes = [n0 >> l for l in range(levels)]
    u = [b.global_array(f"u{l}", sizes[l]) for l in range(levels)]
    tmp = [b.global_array(f"tmp{l}", sizes[l]) for l in range(levels)]
    rnorm = b.global_scalar("rnorm")

    annotated: dict[str, int] = {}
    identified: set[str] = set()

    def mark(key, loop):
        if key not in annotated:  # first cycle carries the ground truth
            annotated[key] = loop.line
            identified.add(key)

    with b.function("main") as f:
        mark("init", lcg_fill(f, u[0], sizes[0], seed=5150))

        for cyc in range(CYCLES):
            # Downward leg: smooth, then restrict the smoothed field.
            for l in range(levels - 1):
                mark(f"smooth_down_{l}", stencil3(f, tmp[l], u[l], sizes[l]))
                i = f.reg(f"i_restrict_{l}_{cyc}")
                with f.for_loop(i, 0, sizes[l + 1]) as rs:
                    f.store(
                        u[l + 1],
                        i,
                        (f.load(tmp[l], i * 2) + f.load(tmp[l], i * 2 + 1)) / 2,
                    )
                mark(f"restrict_{l}", rs)

            # Coarsest smoothing.
            mark(
                "smooth_coarse",
                stencil3(f, tmp[levels - 1], u[levels - 1], sizes[levels - 1]),
            )

            # Upward leg: prolongate and correct.
            for l in range(levels - 2, -1, -1):
                i = f.reg(f"i_prolong_{l}_{cyc}")
                with f.for_loop(i, 0, sizes[l + 1]) as pg:
                    f.store(
                        u[l],
                        i * 2,
                        f.load(u[l], i * 2) + f.load(tmp[l + 1], i) / 2,
                    )
                    f.store(
                        u[l],
                        i * 2 + 1,
                        f.load(u[l], i * 2 + 1) + f.load(tmp[l + 1], i) / 2,
                    )
                mark(f"prolong_{l}", pg)
                mark(f"smooth_up_{l}", stencil3(f, tmp[l], u[l], sizes[l]))

            # Residual norm between cycles (reduction — identified).
            f.store(rnorm, None, 0)
            j = f.reg(f"j_norm_{cyc}")
            with f.for_loop(j, 1, sizes[0] - 1) as nm:
                f.store(
                    rnorm,
                    None,
                    f.load(rnorm)
                    + (f.load(u[0], j) - f.load(tmp[0], j))
                    * (f.load(u[0], j) - f.load(tmp[0], j)),
                )
            mark("residual_norm", nm)

    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


register(
    Workload(
        name="mg",
        suite="nas",
        build_seq=build,
        description="multigrid V-cycle, all loops out-of-place",
    )
)
