"""Starbench suite analogs (sequential + pthread-style variants).

Registration happens on import of each kernel module.
"""

from repro.workloads.starbench import (  # noqa: F401
    bodytrack,
    c_ray,
    h264dec,
    kmeans,
    md5,
    ray_rot,
    rgbyuv,
    rot_cc,
    rotate,
    streamcluster,
    tinyjpeg,
)

__all__ = [
    "bodytrack",
    "c_ray",
    "h264dec",
    "kmeans",
    "md5",
    "ray_rot",
    "rgbyuv",
    "rot_cc",
    "rotate",
    "streamcluster",
    "tinyjpeg",
]
