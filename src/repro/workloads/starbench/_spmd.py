"""Shared scaffolding for pthread-style Starbench variants.

The Starbench pthread codes follow one shape: main partitions the iteration
space, spawns T workers with ``(wid, lo, hi)``, and joins.  Shared
accumulators are protected by locks; phased algorithms use barriers.
"""

from __future__ import annotations

from repro.minivm.builder import FunctionBuilder


def chunk_bounds(n: int, threads: int) -> list[tuple[int, int]]:
    """Contiguous [lo, hi) ranges splitting ``n`` items over ``threads``."""
    base, rem = divmod(n, threads)
    bounds = []
    lo = 0
    for t in range(threads):
        hi = lo + base + (1 if t < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def spawn_workers(
    f: FunctionBuilder, func: str, n: int, threads: int, *extra
) -> None:
    """Emit spawn calls for every range chunk plus a join."""
    for wid, (lo, hi) in enumerate(chunk_bounds(n, threads)):
        f.spawn(func, wid, lo, hi, *extra)
    f.join_all()
