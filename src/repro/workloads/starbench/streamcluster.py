"""streamcluster — online clustering analog.

Repeated gain evaluation of candidate centers over a small point set: few
distinct addresses hammered many times (Table I: 8.6e3 addresses vs 1.2e7
accesses — the lowest address/access ratio in the suite).  The gain
accumulator makes every evaluation round a reduction; the pthread version
partitions points with a locked shared gain.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import spawn_workers

ROUNDS = 12


def declare(b: ProgramBuilder, n: int):
    return {
        "px": b.global_array("scx", n),
        "py": b.global_array("scy", n),
        "cost": b.global_array("cost", n),  # current assignment cost per point
        "gain": b.global_scalar("gain"),
    }


def emit_round_range(f, v, lo, hi, round_no, prefix="", lock_id=None):
    """Evaluate opening a candidate center at point index ``round_no``."""
    i = f.reg(f"{prefix}i_rnd")
    dx = f.reg(f"{prefix}dx")
    dy = f.reg(f"{prefix}dy")
    d = f.reg(f"{prefix}d")
    delta = f.reg(f"{prefix}delta")
    cand = round_no * 37  # deterministic candidate index stride
    with f.for_loop(i, lo, hi) as loop:
        f.set(dx, f.load(v["px"], i) - f.load(v["px"], (cand + round_no) % 97))
        f.set(dy, f.load(v["py"], i) - f.load(v["py"], (cand + round_no) % 97))
        f.set(d, dx * dx + dy * dy)
        f.set(delta, f.load(v["cost"], i) - d)
        with f.if_(delta.gt(0)):
            if lock_id is None:
                f.store(v["gain"], None, f.load(v["gain"]) + delta)
            else:
                with f.lock(lock_id):
                    f.store(v["gain"], None, f.load(v["gain"]) + delta)
            f.store(v["cost"], i, d)
    return loop


def build(scale: int = 1):
    n = 500 * scale
    b = ProgramBuilder("streamcluster")
    v = declare(b, n)
    annotated, identified = {}, set()
    with b.function("main") as f:
        annotated["init_x"] = lcg_fill(f, v["px"], n, seed=71).line
        annotated["init_y"] = lcg_fill(f, v["py"], n, seed=72).line
        annotated["init_cost"] = lcg_fill(f, v["cost"], n, seed=73).line
        identified.update(annotated)
        for rnd in range(ROUNDS):
            loop = emit_round_range(f, v, 0, n, rnd, prefix=f"r{rnd}_")
            if rnd == 0:
                annotated["gain_round"] = loop.line
                identified.add("gain_round")  # gain is a same-line reduction
    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n = 500 * scale
    b = ProgramBuilder("streamcluster-pthread")
    v = declare(b, n)
    with b.function("gain_worker", params=("wid", "lo", "hi")) as f:
        for rnd in range(ROUNDS):
            emit_round_range(
                f, v, f.param("lo"), f.param("hi"), rnd, prefix=f"w{rnd}_", lock_id=1
            )
            f.barrier(rnd, threads)
    with b.function("main") as f:
        lcg_fill(f, v["px"], n, seed=71)
        lcg_fill(f, v["py"], n, seed=72)
        lcg_fill(f, v["cost"], n, seed=73)
        spawn_workers(f, "gain_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="streamcluster",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="online clustering gain evaluation",
    )
)
