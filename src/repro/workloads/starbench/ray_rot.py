"""ray-rot — combined ray-trace + rotate analog (as in Starbench)."""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.starbench import c_ray, rotate
from repro.workloads.starbench._spmd import spawn_workers


def build(scale: int = 1):
    w, h = 40 * scale, 32 * scale
    b = ProgramBuilder("ray-rot")
    scene = c_ray.declare_scene(b, w, h)
    rot = {"src": scene["image"], "dst": b.global_array("rotated", w * h)}
    with b.function("main") as f:
        init = c_ray.emit_scene_init(f, scene)
        render = c_ray.emit_render_range(f, scene, w, 0, w * h)
        rloop = rotate.emit_rotate_range(f, rot, w, h, 0, w * h)
    meta = WorkloadMeta(
        annotated={
            "scene_init": init.line,
            "render_pixels": render.line,
            "rotate_pixels": rloop.line,
        },
        expected_identified={"scene_init", "render_pixels", "rotate_pixels"},
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    w, h = 40 * scale, 32 * scale
    b = ProgramBuilder("ray-rot-pthread")
    scene = c_ray.declare_scene(b, w, h)
    rot = {"src": scene["image"], "dst": b.global_array("rotated", w * h)}
    n = w * h
    with b.function("pipeline_worker", params=("wid", "lo", "hi")) as f:
        c_ray.emit_render_range(f, scene, w, f.param("lo"), f.param("hi"), prefix="rw_")
        # Rotation reads pixels other threads rendered: synchronize phases.
        f.barrier(0, threads)
        rotate.emit_rotate_range(f, rot, w, h, f.param("lo"), f.param("hi"), prefix="tw_")
    with b.function("main") as f:
        c_ray.emit_scene_init(f, scene)
        spawn_workers(f, "pipeline_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="ray-rot",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="ray tracing followed by rotation of the rendered image",
    )
)
