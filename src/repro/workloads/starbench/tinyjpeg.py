"""tinyjpeg — JPEG-decode analog.

Per-block decode over tiny shared tables: coefficient "entropy decode"
(table lookups driven by a register-held bitstream state), dequantization
against a 64-entry table, and a separable 8x8 inverse-transform pass.
Matches tinyjpeg's Table I profile — a few hundred addresses (the tables
and one block buffer) swept tens of millions of times.  Blocks are
independent, so the pthread version splits blocks across threads.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import LCG_M, lcg_step, lcg_fill
from repro.workloads.starbench._spmd import spawn_workers

BLOCK = 64  # one 8x8 block


def declare(b: ProgramBuilder, n_blocks: int, threads: int = 1):
    return {
        "huff": b.global_array("huff", 256),
        "quant": b.global_array("quant", BLOCK),
        # one scratch block per thread (like per-decoder state)
        "coeffs": b.global_array("coeffs", BLOCK * max(threads, 1)),
        "out": b.global_array("out", n_blocks * BLOCK),
        # chroma upsampling + colorspace stage (one byte per luma sample)
        "rgb": b.global_array("rgb", n_blocks * BLOCK),
    }


def emit_upsample_range(f, v, lo, hi, prefix=""):
    """Chroma upsample + YCbCr->RGB-ish conversion over decoded blocks —
    the post-IDCT stage of a real tiny JPEG decoder (elementwise over the
    decoded plane: parallelizable)."""
    blk = f.reg(f"{prefix}blk_up")
    k = f.reg(f"{prefix}k_up")
    y = f.reg(f"{prefix}y_up")
    with f.for_loop(blk, lo, hi) as loop:
        with f.for_loop(k, 0, BLOCK):
            f.set(y, f.load(v["out"], blk * BLOCK + k))
            # chroma sampled at half resolution within the block
            f.store(
                v["rgb"],
                blk * BLOCK + k,
                (y * 298 + f.load(v["out"], blk * BLOCK + (k // 2) * 2) * 100)
                // 256
                % 256,
            )
    return loop


def emit_decode_range(f, v, lo, hi, scratch_base, prefix=""):
    blk = f.reg(f"{prefix}blk")
    k = f.reg(f"{prefix}k")
    r = f.reg(f"{prefix}r")
    c = f.reg(f"{prefix}c")
    bits = f.reg(f"{prefix}bits")
    s = f.reg(f"{prefix}s")
    with f.for_loop(blk, lo, hi) as loop:
        f.set(bits, (blk * 2654435761) % LCG_M)
        # "entropy decode" + dequantize into the scratch block
        with f.for_loop(k, 0, BLOCK):
            lcg_step(f, bits)
            f.store(
                v["coeffs"],
                scratch_base + k,
                f.load(v["huff"], bits % 256) * f.load(v["quant"], k),
            )
        # separable inverse transform: rows then columns of the 8x8 block
        with f.for_loop(r, 0, 8):
            f.set(s, 0)
            with f.for_loop(c, 0, 8):
                f.set(s, f.reg(f"{prefix}s") + f.load(v["coeffs"], scratch_base + r * 8 + c))
            with f.for_loop(c, 0, 8):
                f.store(
                    v["coeffs"],
                    scratch_base + r * 8 + c,
                    f.load(v["coeffs"], scratch_base + r * 8 + c) * 2 - s / 8,
                )
        with f.for_loop(c, 0, 8):
            f.set(s, 0)
            with f.for_loop(r, 0, 8):
                f.set(s, f.reg(f"{prefix}s") + f.load(v["coeffs"], scratch_base + r * 8 + c))
            with f.for_loop(r, 0, 8):
                f.store(
                    v["out"],
                    blk * BLOCK + r * 8 + c,
                    (f.load(v["coeffs"], scratch_base + r * 8 + c) + s / 8) / 2,
                )
    return loop


def build(scale: int = 1):
    n_blocks = 48 * scale
    b = ProgramBuilder("tinyjpeg")
    v = declare(b, n_blocks)
    annotated, identified = {}, set()
    with b.function("main") as f:
        annotated["init_huff"] = lcg_fill(f, v["huff"], 256, seed=81).line
        annotated["init_quant"] = lcg_fill(f, v["quant"], BLOCK, seed=82).line
        identified.update(annotated)
        loop = emit_decode_range(f, v, 0, n_blocks, 0)
        annotated["decode_blocks"] = loop.line
        # The single shared scratch block carries WAR/WAW between blocks;
        # privatization handles it, so the block loop is still identified
        # (the pthread port indeed gives each thread its own scratch).
        identified.add("decode_blocks")
        up = emit_upsample_range(f, v, 0, n_blocks)
        annotated["upsample_color"] = up.line
        identified.add("upsample_color")
    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n_blocks = 48 * scale
    b = ProgramBuilder("tinyjpeg-pthread")
    v = declare(b, n_blocks, threads)
    with b.function("decode_worker", params=("wid", "lo", "hi")) as f:
        emit_decode_range(
            f, v, f.param("lo"), f.param("hi"), f.param("wid") * BLOCK, prefix="w_"
        )
        emit_upsample_range(f, v, f.param("lo"), f.param("hi"), prefix="w_")
    with b.function("main") as f:
        lcg_fill(f, v["huff"], 256, seed=81)
        lcg_fill(f, v["quant"], BLOCK, seed=82)
        spawn_workers(f, "decode_worker", n_blocks, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="tinyjpeg",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="block decode against tiny shared tables",
    )
)
