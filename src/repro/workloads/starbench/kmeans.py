"""kmeans — clustering analog.

Lloyd iterations over 2-D points: the assignment loop finds each point's
nearest centroid and accumulates it into per-cluster sums (same-line array
reductions), then a small recompute loop divides sums by counts.  The
pthread version splits points across threads and serializes the shared
accumulation under a lock with a barrier between phases — giving kmeans the
contended hot addresses that make it one of the paper's poorly-scaling
five.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder, UnOp
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import spawn_workers

K = 5
ITERS = 3


def declare(b: ProgramBuilder, n: int):
    return {
        "px": b.global_array("px", n),
        "py": b.global_array("py", n),
        "cx": b.global_array("cx", K),
        "cy": b.global_array("cy", K),
        "oldcx": b.global_array("oldcx", K),
        "oldcy": b.global_array("oldcy", K),
        "sumx": b.global_array("sumx", K),
        "sumy": b.global_array("sumy", K),
        "cnt": b.global_array("cnt", K),
        "assign": b.global_array("assign", n),
        "delta": b.global_scalar("delta"),
    }


def emit_zero_accumulators(f, v, prefix=""):
    c = f.reg(f"{prefix}c_zero")
    with f.for_loop(c, 0, K) as loop:
        f.store(v["sumx"], c, 0)
        f.store(v["sumy"], c, 0)
        f.store(v["cnt"], c, 0)
    return loop


def emit_assign_range(f, v, lo, hi, prefix="", lock_id=None):
    """Assignment + accumulation over points [lo, hi)."""
    i = f.reg(f"{prefix}i_asn")
    c = f.reg(f"{prefix}c_asn")
    best = f.reg(f"{prefix}best")
    bestc = f.reg(f"{prefix}bestc")
    d = f.reg(f"{prefix}d")
    dx = f.reg(f"{prefix}dx")
    dy = f.reg(f"{prefix}dy")
    with f.for_loop(i, lo, hi) as loop:
        f.set(best, 1 << 40)
        f.set(bestc, 0)
        with f.for_loop(c, 0, K):
            f.set(dx, f.load(px := v["px"], i) - f.load(v["cx"], c))
            f.set(dy, f.load(v["py"], i) - f.load(v["cy"], c))
            f.set(d, dx * dx + dy * dy)
            with f.if_(d.lt(best)):
                f.set(best, d)
                f.set(bestc, c)
        f.store(v["assign"], i, bestc)
        if lock_id is None:
            f.store(v["sumx"], bestc, f.load(v["sumx"], bestc) + f.load(px, i))
            f.store(v["sumy"], bestc, f.load(v["sumy"], bestc) + f.load(v["py"], i))
            f.store(v["cnt"], bestc, f.load(v["cnt"], bestc) + 1)
        else:
            with f.lock(lock_id):
                f.store(v["sumx"], bestc, f.load(v["sumx"], bestc) + f.load(px, i))
                f.store(v["sumy"], bestc, f.load(v["sumy"], bestc) + f.load(v["py"], i))
                f.store(v["cnt"], bestc, f.load(v["cnt"], bestc) + 1)
    return loop


def emit_recompute(f, v, prefix=""):
    c = f.reg(f"{prefix}c_rec")
    with f.for_loop(c, 0, K) as loop:
        with f.if_(f.load(v["cnt"], c).gt(0)):
            f.store(v["cx"], c, f.load(v["sumx"], c) / f.load(v["cnt"], c))
            f.store(v["cy"], c, f.load(v["sumy"], c) / f.load(v["cnt"], c))
    return loop


def build(scale: int = 1):
    n = 1200 * scale
    b = ProgramBuilder("kmeans")
    v = declare(b, n)
    annotated, identified = {}, set()
    with b.function("main") as f:
        annotated["init_px"] = lcg_fill(f, v["px"], n, seed=31).line
        annotated["init_py"] = lcg_fill(f, v["py"], n, seed=32).line
        annotated["init_cx"] = lcg_fill(f, v["cx"], K, seed=33).line
        annotated["init_cy"] = lcg_fill(f, v["cy"], K, seed=34).line
        identified.update(annotated)
        for it in range(ITERS):
            emit_zero_accumulators(f, v, prefix=f"z{it}_")
            loop = emit_assign_range(f, v, 0, n, prefix=f"a{it}_")
            if it == 0:
                annotated["assign_points"] = loop.line
                identified.add("assign_points")  # array reductions
            # Convergence machinery of real Lloyd: remember old centroids,
            # recompute, then reduce the total centroid movement.
            c = f.reg(f"c_old{it}")
            with f.for_loop(c, 0, K) as snap:
                f.store(v["oldcx"], c, f.load(v["cx"], c))
                f.store(v["oldcy"], c, f.load(v["cy"], c))
            emit_recompute(f, v, prefix=f"r{it}_")
            f.store(v["delta"], None, 0)
            d = f.reg(f"c_dl{it}")
            with f.for_loop(d, 0, K) as dl:
                f.store(
                    v["delta"],
                    None,
                    f.load(v["delta"])
                    + UnOp("abs", f.load(v["cx"], d) - f.load(v["oldcx"], d))
                    + UnOp("abs", f.load(v["cy"], d) - f.load(v["oldcy"], d)),
                )
            if it == 0:
                annotated["snapshot_centroids"] = snap.line
                identified.add("snapshot_centroids")
                annotated["movement_delta"] = dl.line
                identified.add("movement_delta")
    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n = 1200 * scale
    b = ProgramBuilder("kmeans-pthread")
    v = declare(b, n)
    with b.function("assign_worker", params=("wid", "lo", "hi")) as f:
        for it in range(ITERS):
            emit_assign_range(
                f, v, f.param("lo"), f.param("hi"), prefix=f"w{it}_", lock_id=1
            )
            f.barrier(it * 2, threads)
            # thread 0 recomputes centroids between phases
            with f.if_(f.param("wid").eq(0)):
                emit_recompute(f, v, prefix=f"wr{it}_")
                emit_zero_accumulators(f, v, prefix=f"wz{it}_")
            f.barrier(it * 2 + 1, threads)
    with b.function("main") as f:
        lcg_fill(f, v["px"], n, seed=31)
        lcg_fill(f, v["py"], n, seed=32)
        lcg_fill(f, v["cx"], K, seed=33)
        lcg_fill(f, v["cy"], K, seed=34)
        emit_zero_accumulators(f, v, prefix="m_")
        spawn_workers(f, "assign_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="kmeans",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="Lloyd k-means with locked shared accumulators",
    )
)
