"""h264dec — video-decoder analog.

The largest, most dependence-rich benchmark of the suite (the paper counts
31k distinct dependences for it).  The analog decodes a grid of
macroblocks per frame: each block is intra-predicted from its *left* and
*top* neighbours (the wavefront dependence that makes naive MB-loop
parallelization illegal), a residual is "entropy-decoded" and added, and a
deblocking filter smooths block edges.  The pthread version assigns MB rows
to threads and enforces the top-neighbour dependence with per-row progress
counters guarded by a lock — 2D-wave style, like real slice decoders.
"""

from __future__ import annotations

from repro.minivm import BinOp, Const, ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import LCG_M, copy, lcg_fill, lcg_step
from repro.workloads.starbench._spmd import chunk_bounds

FRAMES = 2
MB = 16  # pixels per macroblock (4x4 analog)


def declare(b: ProgramBuilder, mw: int, mh: int, threads: int = 1):
    return {
        "frame": b.global_array("frame", mw * mh * MB),
        "ref_frame": b.global_array("ref_frame", mw * mh * MB),
        "resid": b.global_array("resid", MB * max(threads, 1)),
        "qtab": b.global_array("qtab", MB),
        "progress": b.global_array("progress", max(mh, 1)),
    }


def emit_decode_mb(f, v, mw, mx, my, scratch_base, frame_no, prefix=""):
    """Decode one macroblock at (mx, my) — shared by both variants.

    Frame 0 is an I-frame (intra prediction from left/top neighbours);
    later frames are P-frames (motion compensation: prediction from a
    motion-vector-displaced block of the *reference* frame, creating the
    cross-frame RAW dependences real decoders carry).
    """
    k = f.reg(f"{prefix}k_mb")
    bits = f.reg(f"{prefix}bits")
    pred = f.reg(f"{prefix}pred")
    base = f.reg(f"{prefix}base")
    f.set(base, (my * mw + mx) * MB)
    if frame_no == 0:
        # Intra prediction: average of left MB's last pixel and top MB's
        # bottom pixel (wavefront neighbours), DC fallback at edges.
        f.set(pred, 128)
        with f.if_(mx.gt(0)):
            f.set(pred, f.load(v["frame"], base - 1))
        with f.if_(my.gt(0)):
            f.set(
                pred,
                (f.reg(f"{prefix}pred") + f.load(v["frame"], base - mw * MB + MB - 1)) / 2,
            )
    else:
        # Motion compensation: sample the reference frame at the block one
        # MB to the left (clamped) — a short backward motion vector.
        mvsrc = f.reg(f"{prefix}mvsrc")
        f.set(mvsrc, (my * mw + BinOp("max", mx - 1, Const(0))) * MB)
        f.set(
            pred,
            (f.load(v["ref_frame"], mvsrc) + f.load(v["ref_frame"], mvsrc + MB - 1)) / 2,
        )
    # Residual "entropy decode" into the scratch block.
    f.set(bits, (base * 2654435761 + frame_no) % LCG_M)
    with f.for_loop(k, 0, MB):
        lcg_step(f, bits)
        f.store(v["resid"], scratch_base + k, (bits % 64) * f.load(v["qtab"], k) / 64)
    # Reconstruct.
    with f.for_loop(k, 0, MB):
        f.store(
            v["frame"],
            base + k,
            (pred + f.load(v["resid"], scratch_base + k)) % 256,
        )
    # Deblock: smooth against the left neighbour's boundary pixel.
    with f.if_(mx.gt(0)):
        f.store(
            v["frame"],
            base,
            (f.load(v["frame"], base) + f.load(v["frame"], base - 1)) / 2,
        )


def build(scale: int = 1):
    mw, mh = 10 * scale, 6 * scale
    b = ProgramBuilder("h264dec")
    v = declare(b, mw, mh)
    annotated, identified = {}, set()
    with b.function("main") as f:
        annotated["init_qtab"] = lcg_fill(f, v["qtab"], MB, seed=64).line
        identified.add("init_qtab")
        mx = f.reg("mx")
        my = f.reg("my")
        for fr in range(FRAMES):
            with f.for_loop(my, 0, mh) as rows:
                with f.for_loop(mx, 0, mw) as cols:
                    emit_decode_mb(f, v, mw, mx, my, 0, fr, prefix=f"f{fr}_")
            if fr == 0:
                # Both MB loops are annotated in parallel decoders (slice/
                # wavefront schemes) but carry intra-prediction/deblocking
                # dependences.
                annotated["mb_rows"] = rows.line
                annotated["mb_cols"] = cols.line
            # Decoded frame becomes the reference for motion compensation.
            ref_copy = copy(f, v["ref_frame"], v["frame"], mw * mh * MB)
            if fr == 0:
                annotated["ref_copy"] = ref_copy.line
                identified.add("ref_copy")
    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    mw, mh = 10 * scale, 6 * scale
    b = ProgramBuilder("h264dec-pthread")
    v = declare(b, mw, mh, threads)
    with b.function("row_worker", params=("wid", "lo", "hi")) as f:
        my = f.reg("my")
        mx = f.reg("mx")
        ready = f.reg("ready")
        for fr in range(FRAMES):
            with f.for_loop(my, f.param("lo"), f.param("hi")):
                with f.for_loop(mx, 0, mw):
                    # 2D-wave: wait until the top row has decoded past mx.
                    with f.if_(my.gt(0)):
                        f.set(ready, 0)
                        with f.while_loop(f.reg("ready").eq(0)):
                            with f.lock(1):
                                with f.if_(f.load(v["progress"], my - 1).gt(mx)):
                                    f.set(ready, 1)
                    emit_decode_mb(
                        f, v, mw, mx, my, f.param("wid") * MB, fr, prefix="w_"
                    )
                    with f.lock(1):
                        f.store(v["progress"], my, mx + 1)
            f.barrier(fr, threads)
            with f.if_(f.param("wid").eq(0)):
                z = f.reg("z_pg")
                with f.for_loop(z, 0, mh):
                    f.store(v["progress"], z, 0)
            # Every thread copies its rows into the reference frame.
            c = f.reg("c_ref")
            with f.for_loop(c, f.param("lo") * mw * MB, f.param("hi") * mw * MB):
                f.store(v["ref_frame"], c, f.load(v["frame"], c))
            f.barrier(fr + FRAMES, threads)
    with b.function("main") as f:
        lcg_fill(f, v["qtab"], MB, seed=64)
        for wid, (lo, hi) in enumerate(chunk_bounds(mh, threads)):
            f.spawn("row_worker", wid, lo, hi)
        f.join_all()
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="h264dec",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="macroblock wavefront video decoding",
    )
)
