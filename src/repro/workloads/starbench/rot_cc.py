"""rot-cc — rotate + colorspace-convert analog (as in Starbench)."""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench import rgbyuv, rotate
from repro.workloads.starbench._spmd import spawn_workers


def _declare(b: ProgramBuilder, n: int):
    planes = rgbyuv.declare(b, n)
    rot = {"src": planes["y"], "dst": b.global_array("yrot", n)}
    return planes, rot


def build(scale: int = 1):
    w, h = 56 * scale, 40 * scale
    n = w * h
    b = ProgramBuilder("rot-cc")
    planes, rot = _declare(b, n)
    with b.function("main") as f:
        loops = {
            "init_r": lcg_fill(f, planes["r"], n, seed=21),
            "init_g": lcg_fill(f, planes["g"], n, seed=22),
            "init_b": lcg_fill(f, planes["bch"], n, seed=23),
            "convert": rgbyuv.emit_convert_range(f, planes, 0, n),
            "rotate_y": rotate.emit_rotate_range(f, rot, w, h, 0, n),
        }
    meta = WorkloadMeta(
        annotated={k: l.line for k, l in loops.items()},
        expected_identified=set(loops),
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    w, h = 56 * scale, 40 * scale
    n = w * h
    b = ProgramBuilder("rot-cc-pthread")
    planes, rot = _declare(b, n)
    with b.function("cc_worker", params=("wid", "lo", "hi")) as f:
        rgbyuv.emit_convert_range(f, planes, f.param("lo"), f.param("hi"), prefix="cw_")
        f.barrier(0, threads)
        rotate.emit_rotate_range(f, rot, w, h, f.param("lo"), f.param("hi"), prefix="rw_")
    with b.function("main") as f:
        lcg_fill(f, planes["r"], n, seed=21)
        lcg_fill(f, planes["g"], n, seed=22)
        lcg_fill(f, planes["bch"], n, seed=23)
        spawn_workers(f, "cc_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="rot-cc",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="colorspace conversion followed by rotation",
    )
)
