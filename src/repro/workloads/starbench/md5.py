"""md5 — digest-chain analog.

MD5-style block mixing: four state words are carried through every block of
a buffer (rounds of add/xor/rotate-ish mixing against the message words).
The chain over blocks is inherently sequential; parallelism exists only
*across independent buffers*, which is what the pthread version exploits —
one buffer per thread, private state.  Buffers are long and states tiny:
few addresses, many accesses, matching md5's Table I row, and the per-
buffer split gives the uneven hot/cold pattern behind its 16-thread memory
spike in the paper's Figure 7.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import chunk_bounds

WORDS_PER_BLOCK = 16
ROUNDS = 16  # per block; the real MD5 runs 64
MASK = (1 << 31) - 1


def emit_digest_range(f, msg, state, state_base, lo_block, hi_block, prefix=""):
    """Digest blocks [lo_block, hi_block) into state[state_base..+4)."""
    blk = f.reg(f"{prefix}blk")
    r = f.reg(f"{prefix}r")
    a = f.reg(f"{prefix}a")
    bb = f.reg(f"{prefix}b")
    c = f.reg(f"{prefix}c")
    d = f.reg(f"{prefix}d")
    w = f.reg(f"{prefix}w")
    t = f.reg(f"{prefix}t")
    with f.for_loop(blk, lo_block, hi_block) as loop:
        # load chained state (carried RAW across blocks: sequential chain)
        f.set(a, f.load(state, state_base))
        f.set(bb, f.load(state, state_base + 1))
        f.set(c, f.load(state, state_base + 2))
        f.set(d, f.load(state, state_base + 3))
        with f.for_loop(r, 0, ROUNDS):
            f.set(w, f.load(msg, blk * WORDS_PER_BLOCK + (r % WORDS_PER_BLOCK)))
            f.set(t, (a + ((bb & c) | d) + w + r * 1518500249) & MASK)
            f.set(a, d)
            f.set(d, c)
            f.set(c, bb)
            f.set(bb, (bb + ((t << 3) | (t >> 7))) & MASK)
        f.store(state, state_base, (f.load(state, state_base) + a) & MASK)
        f.store(state, state_base + 1, (f.load(state, state_base + 1) + bb) & MASK)
        f.store(state, state_base + 2, (f.load(state, state_base + 2) + c) & MASK)
        f.store(state, state_base + 3, (f.load(state, state_base + 3) + d) & MASK)
    return loop


def build(scale: int = 1):
    n_blocks = 80 * scale
    b = ProgramBuilder("md5")
    msg = b.global_array("msg", n_blocks * WORDS_PER_BLOCK)
    state = b.global_array("state", 4)
    with b.function("main") as f:
        init = lcg_fill(f, msg, n_blocks * WORDS_PER_BLOCK, seed=5555)
        digest = emit_digest_range(f, msg, state, 0, 0, n_blocks)
    meta = WorkloadMeta(
        annotated={"init_msg": init.line, "digest_blocks": digest.line},
        # The block chain is sequential: annotated in the pthread port
        # (buffer-level parallelism), but not loop-parallelizable.
        expected_identified={"init_msg"},
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n_blocks = 80 * scale
    b = ProgramBuilder("md5-pthread")
    msg = b.global_array("msg", n_blocks * WORDS_PER_BLOCK)
    state = b.global_array("state", 4 * threads)  # private state per thread
    with b.function("digest_worker", params=("wid", "lo", "hi")) as f:
        emit_digest_range(
            f, msg, state, f.param("wid") * 4, f.param("lo"), f.param("hi"),
            prefix="w_",
        )
    with b.function("main") as f:
        lcg_fill(f, msg, n_blocks * WORDS_PER_BLOCK, seed=5555)
        for wid, (lo, hi) in enumerate(chunk_bounds(n_blocks, threads)):
            f.spawn("digest_worker", wid, lo, hi)
        f.join_all()
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="md5",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="MD5-style block digest chains",
    )
)
