"""c-ray — sphere ray-tracer analog.

Casts one primary ray per pixel against a small sphere list, shades the
nearest hit with a Lambert term, and writes an image.  Pixels are
independent — the pthread version splits pixel rows across threads.  The
image dominates the address count (c-ray tops Table I's address column),
and the per-pixel sphere loop gives the deep read-mostly inner loop the
original has.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.minivm.astnodes import UnOp
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.starbench._spmd import spawn_workers

N_SPHERES = 6


def declare_scene(b: ProgramBuilder, width: int, height: int):
    return {
        "sx": b.global_array("sx", N_SPHERES),
        "sy": b.global_array("sy", N_SPHERES),
        "sz": b.global_array("sz", N_SPHERES),
        "srad": b.global_array("srad", N_SPHERES),
        "image": b.global_array("image", width * height),
    }


def emit_scene_init(f, scene):
    """Place spheres deterministically; one annotated parallel loop."""
    s = f.reg("s_init")
    with f.for_loop(s, 0, N_SPHERES) as loop:
        f.store(scene["sx"], s, s * 37 % 97 - 48)
        f.store(scene["sy"], s, s * 61 % 83 - 41)
        f.store(scene["sz"], s, 60 + s * 11)
        f.store(scene["srad"], s, 8 + s * 3)
    return loop


def emit_render_range(f, scene, width, lo, hi, prefix=""):
    """Render pixels [lo, hi); returns the pixel loop statement.

    The ray march per pixel: for each sphere solve the quadratic for the
    view ray (dx, dy, 1), keep the nearest positive root, shade by depth.
    All intermediates are registers; only scene reads and the image write
    touch memory — like the -O2-compiled original.
    """
    p = f.reg(f"{prefix}p")
    best = f.reg(f"{prefix}best")
    s = f.reg(f"{prefix}s")
    dx = f.reg(f"{prefix}dx")
    dy = f.reg(f"{prefix}dy")
    ocx = f.reg(f"{prefix}ocx")
    ocy = f.reg(f"{prefix}ocy")
    ocz = f.reg(f"{prefix}ocz")
    bq = f.reg(f"{prefix}bq")
    cq = f.reg(f"{prefix}cq")
    disc = f.reg(f"{prefix}disc")
    t = f.reg(f"{prefix}t")
    with f.for_loop(p, lo, hi) as loop:
        f.set(dx, (p % width) - width / 2)
        f.set(dy, (p // width) - width / 2)
        f.set(best, 1_000_000)
        with f.for_loop(s, 0, N_SPHERES):
            f.set(ocx, -f.load(scene["sx"], s))
            f.set(ocy, -f.load(scene["sy"], s))
            f.set(ocz, -f.load(scene["sz"], s))
            # ray dir (dx, dy, 64), unnormalized quadratic
            f.set(bq, ocx * dx + ocy * dy + ocz * 64)
            f.set(
                cq,
                ocx * ocx + ocy * ocy + ocz * ocz
                - f.load(scene["srad"], s) * f.load(scene["srad"], s),
            )
            f.set(disc, bq * bq - cq * (dx * dx + dy * dy + 64 * 64))
            with f.if_(disc.gt(0)):
                f.set(t, (-bq - UnOp("sqrt", disc)) / (dx * dx + dy * dy + 4096))
                with f.if_(t.gt(0) & t.lt(best)):
                    f.set(best, t)
        # Lambert-ish shade by hit depth; a shadow feeler toward the light
        # re-walks the sphere list (like the original's shadow rays) and
        # halves the contribution when occluded.
        with f.if_(best.lt(1_000_000)):
            shadow = f.reg(f"{prefix}shadow")
            f.set(shadow, 0)
            with f.for_loop(s, 0, N_SPHERES):
                # hit point ~ t*(dx,dy,64); light sits at (0,-1000,0)
                f.set(ocx, best * dx - f.load(scene["sx"], s))
                f.set(ocy, best * dy - 1000 - f.load(scene["sy"], s))
                f.set(ocz, best * 64 - f.load(scene["sz"], s))
                with f.if_(
                    (ocx * ocx + ocy * ocy + ocz * ocz).lt(
                        f.load(scene["srad"], s) * f.load(scene["srad"], s) * 4
                    )
                ):
                    f.set(shadow, 1)
            with f.if_(f.reg(f"{prefix}shadow").gt(0)):
                f.store(scene["image"], p, 127 / (1 + best * best))
            with f.else_():
                f.store(scene["image"], p, 255 / (1 + best * best))
        with f.else_():
            f.store(scene["image"], p, 0)
    return loop


def build(scale: int = 1):
    width = 48 * scale
    height = 32 * scale
    b = ProgramBuilder("c-ray")
    scene = declare_scene(b, width, height)
    with b.function("main") as f:
        init = emit_scene_init(f, scene)
        render = emit_render_range(f, scene, width, 0, width * height)
    meta = WorkloadMeta(
        annotated={"scene_init": init.line, "render_pixels": render.line},
        expected_identified={"scene_init", "render_pixels"},
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    width = 48 * scale
    height = 32 * scale
    b = ProgramBuilder("c-ray-pthread")
    scene = declare_scene(b, width, height)
    with b.function("render_worker", params=("wid", "lo", "hi")) as f:
        emit_render_range(f, scene, width, f.param("lo"), f.param("hi"), prefix="w_")
    with b.function("main") as f:
        emit_scene_init(f, scene)
        spawn_workers(f, "render_worker", width * height, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="c-ray",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="per-pixel sphere ray tracing",
    )
)
