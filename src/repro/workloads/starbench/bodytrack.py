"""bodytrack — particle-filter analog.

Per frame: score every particle against an observation model (parallel,
with a same-line reduction for the total weight), normalize weights, then
systematically *resample* via a cumulative-weight prefix scan — the
sequential stage that, together with the frame loop, limits bodytrack's
scaling in the paper's Figures 5 and 6.  The pthread version parallelizes
the scoring under a locked weight total and leaves resampling to thread 0
between barriers.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import spawn_workers

FRAMES = 2
MODEL = 64


def declare(b: ProgramBuilder, n: int):
    return {
        "pos": b.global_array("pos", n),
        "weight": b.global_array("weight", n),
        "cum": b.global_array("cum", n),
        "newpos": b.global_array("newpos", n),
        "model": b.global_array("model", MODEL),
        "model_half": b.global_array("model_half", MODEL // 2),
        "total": b.global_scalar("total"),
    }


def emit_build_pyramid(f, v, prefix=""):
    """Downsample the observation model — the image-pyramid stage real
    bodytrack builds per frame (out-of-place: parallelizable)."""
    m = f.reg(f"{prefix}m_pyr")
    with f.for_loop(m, 0, MODEL // 2) as loop:
        f.store(
            v["model_half"],
            m,
            (f.load(v["model"], m * 2) + f.load(v["model"], m * 2 + 1)) / 2,
        )
    return loop


def emit_score_range(f, v, n, lo, hi, prefix="", lock_id=None):
    """Coarse-to-fine likelihood: a cheap pass over the half-resolution
    pyramid level refines into the full model — the two-level evaluation
    the real tracker performs per particle."""
    i = f.reg(f"{prefix}i_sc")
    m = f.reg(f"{prefix}m_sc")
    acc = f.reg(f"{prefix}acc")
    with f.for_loop(i, lo, hi) as loop:
        f.set(acc, 0)
        # coarse level: half-resolution sweep
        with f.for_loop(m, 0, MODEL // 2, step=8):
            f.set(
                acc,
                f.reg(f"{prefix}acc")
                + f.load(v["model_half"], (f.load(v["pos"], i) + m) % (MODEL // 2)),
            )
        # fine level, entered only for plausible particles
        with f.if_(f.reg(f"{prefix}acc").gt(0)):
            with f.for_loop(m, 0, MODEL, step=8):
                f.set(
                    acc,
                    f.reg(f"{prefix}acc")
                    + f.load(v["model"], (f.load(v["pos"], i) + m) % MODEL),
                )
        f.store(v["weight"], i, f.reg(f"{prefix}acc") % 255 + 1)
        if lock_id is None:
            f.store(v["total"], None, f.load(v["total"]) + f.load(v["weight"], i))
        else:
            with f.lock(lock_id):
                f.store(v["total"], None, f.load(v["total"]) + f.load(v["weight"], i))
    return loop


def emit_resample(f, v, n, prefix=""):
    """Cumulative weights (sequential scan) + systematic pick."""
    i = f.reg(f"{prefix}i_cum")
    f.store(v["cum"], 0, f.load(v["weight"], 0))
    with f.for_loop(i, 1, n) as scan:
        f.store(v["cum"], i, f.load(v["cum"], i - 1) + f.load(v["weight"], i))
    j = f.reg(f"{prefix}j_rs")
    pick = f.reg(f"{prefix}pick")
    k = f.reg(f"{prefix}k_rs")
    with f.for_loop(j, 0, n) as rs:
        f.set(pick, (j * f.load(v["total"])) / n)
        # linear probe for the first cum >= pick (bounded walk)
        f.set(k, 0)
        with f.while_loop(f.load(v["cum"], k).lt(pick) & k.lt(n - 1)):
            f.set(k, f.reg(f"{prefix}k_rs") + 1)
        f.store(v["newpos"], j, f.load(v["pos"], k))
    c = f.reg(f"{prefix}c_rs")
    with f.for_loop(c, 0, n) as cp:
        f.store(v["pos"], c, f.load(v["newpos"], c))
    return scan, rs, cp


def build(scale: int = 1):
    n = 150 * scale
    b = ProgramBuilder("bodytrack")
    v = declare(b, n)
    annotated, identified = {}, set()
    with b.function("main") as f:
        annotated["init_pos"] = lcg_fill(f, v["pos"], n, seed=91).line
        annotated["init_model"] = lcg_fill(f, v["model"], MODEL, seed=92).line
        annotated["build_pyramid"] = emit_build_pyramid(f, v).line
        identified.update(annotated)
        for fr in range(FRAMES):
            f.store(v["total"], None, 0)
            score = emit_score_range(f, v, n, 0, n, prefix=f"f{fr}_")
            scan, rs, cp = emit_resample(f, v, n, prefix=f"f{fr}_")
            if fr == 0:
                annotated["score_particles"] = score.line
                identified.add("score_particles")
                annotated["cumulative_scan"] = scan.line  # sequential prefix
                annotated["resample_pick"] = rs.line
                identified.add("resample_pick")  # reads cum, writes newpos
                annotated["copy_back"] = cp.line
                identified.add("copy_back")
    meta = WorkloadMeta(annotated=annotated, expected_identified=identified)
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n = 150 * scale
    b = ProgramBuilder("bodytrack-pthread")
    v = declare(b, n)
    with b.function("track_worker", params=("wid", "lo", "hi")) as f:
        for fr in range(FRAMES):
            emit_score_range(
                f, v, n, f.param("lo"), f.param("hi"), prefix=f"w{fr}_", lock_id=1
            )
            f.barrier(fr * 2, threads)
            with f.if_(f.param("wid").eq(0)):
                emit_resample(f, v, n, prefix=f"w{fr}_")
                f.store(v["total"], None, 0)
            f.barrier(fr * 2 + 1, threads)
    with b.function("main") as f:
        lcg_fill(f, v["pos"], n, seed=91)
        lcg_fill(f, v["model"], MODEL, seed=92)
        emit_build_pyramid(f, v, prefix="m_")
        spawn_workers(f, "track_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="bodytrack",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="particle filter with sequential resampling",
    )
)
