"""rgbyuv — RGB to YUV colorspace conversion analog.

Elementwise conversion over six full-size planes (three in, three out):
the most address-hungry kernel relative to its access count, which is why
rgbyuv shows the worst FPR in Table I at small signatures.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import spawn_workers


def declare(b: ProgramBuilder, n: int, prefix: str = ""):
    return {
        c: b.global_array(prefix + c, n) for c in ("r", "g", "bch", "y", "u", "v")
    }


def emit_convert_range(f, p_, lo, hi, prefix=""):
    i = f.reg(f"{prefix}i_cvt")
    with f.for_loop(i, lo, hi) as loop:
        f.store(
            p_["y"],
            i,
            (66 * f.load(p_["r"], i) + 129 * f.load(p_["g"], i)
             + 25 * f.load(p_["bch"], i)) // 256 + 16,
        )
        f.store(
            p_["u"],
            i,
            (-38 * f.load(p_["r"], i) - 74 * f.load(p_["g"], i)
             + 112 * f.load(p_["bch"], i)) // 256 + 128,
        )
        f.store(
            p_["v"],
            i,
            (112 * f.load(p_["r"], i) - 94 * f.load(p_["g"], i)
             - 18 * f.load(p_["bch"], i)) // 256 + 128,
        )
    return loop


def build(scale: int = 1):
    n = 4000 * scale
    b = ProgramBuilder("rgbyuv")
    planes = declare(b, n)
    with b.function("main") as f:
        loops = {
            "init_r": lcg_fill(f, planes["r"], n, seed=11),
            "init_g": lcg_fill(f, planes["g"], n, seed=12),
            "init_b": lcg_fill(f, planes["bch"], n, seed=13),
            "convert": emit_convert_range(f, planes, 0, n),
        }
    meta = WorkloadMeta(
        annotated={k: l.line for k, l in loops.items()},
        expected_identified=set(loops),
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    n = 4000 * scale
    b = ProgramBuilder("rgbyuv-pthread")
    planes = declare(b, n)
    with b.function("convert_worker", params=("wid", "lo", "hi")) as f:
        emit_convert_range(f, planes, f.param("lo"), f.param("hi"), prefix="w_")
    with b.function("main") as f:
        lcg_fill(f, planes["r"], n, seed=11)
        lcg_fill(f, planes["g"], n, seed=12)
        lcg_fill(f, planes["bch"], n, seed=13)
        spawn_workers(f, "convert_worker", n, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="rgbyuv",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="RGB->YUV conversion over six planes",
    )
)
