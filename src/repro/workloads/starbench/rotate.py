"""rotate — 90-degree image rotation analog.

``out[x * h + (h-1-y)] = in[y * w + x]``: pure data movement over two large
buffers.  Every pixel is read once and written once, so the loop
parallelizes trivially; the two full-size images give rotate its place
among the high-address-count Table I rows.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill
from repro.workloads.starbench._spmd import spawn_workers


def declare(b: ProgramBuilder, w: int, h: int, prefix: str = ""):
    return {
        "src": b.global_array(prefix + "src", w * h),
        "dst": b.global_array(prefix + "dst", w * h),
    }


def emit_rotate_range(f, bufs, w, h, lo, hi, prefix=""):
    """Rotate pixels [lo, hi) of the source; returns the loop."""
    p = f.reg(f"{prefix}p_rot")
    x = f.reg(f"{prefix}x_rot")
    y = f.reg(f"{prefix}y_rot")
    with f.for_loop(p, lo, hi) as loop:
        f.set(x, p % w)
        f.set(y, p // w)
        f.store(bufs["dst"], x * h + (h - 1 - y), f.load(bufs["src"], p))
    return loop


def build(scale: int = 1):
    w, h = 64 * scale, 48 * scale
    b = ProgramBuilder("rotate")
    bufs = declare(b, w, h)
    with b.function("main") as f:
        init = lcg_fill(f, bufs["src"], w * h, seed=9091)
        rot = emit_rotate_range(f, bufs, w, h, 0, w * h)
    meta = WorkloadMeta(
        annotated={"init_image": init.line, "rotate_pixels": rot.line},
        expected_identified={"init_image", "rotate_pixels"},
    )
    return b.build(), meta


def build_par(scale: int = 1, threads: int = 4):
    w, h = 64 * scale, 48 * scale
    b = ProgramBuilder("rotate-pthread")
    bufs = declare(b, w, h)
    with b.function("rotate_worker", params=("wid", "lo", "hi")) as f:
        emit_rotate_range(f, bufs, w, h, f.param("lo"), f.param("hi"), prefix="w_")
    with b.function("main") as f:
        lcg_fill(f, bufs["src"], w * h, seed=9091)
        spawn_workers(f, "rotate_worker", w * h, threads)
    return b.build(), WorkloadMeta()


register(
    Workload(
        name="rotate",
        suite="starbench",
        build_seq=build,
        build_par=build_par,
        description="90-degree image rotation",
    )
)
