"""fft-transpose — all-to-all communication analog.

SPLASH-2's FFT spends its communication in a blocked matrix transpose:
every thread owns a block-row and, in the transpose step, reads one block
from *every* other thread's row.  Barrow-Williams et al. characterize the
resulting producer/consumer matrix as uniform all-to-all — the opposite
extreme of water-spatial's neighbour band, which makes the pair a good
probe of communication-pattern detection.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register


def build_par(scale: int = 1, threads: int = 4):
    block = 8 * scale  # elements per (row-block, col-block) tile
    n = block * threads
    b = ProgramBuilder("fft-transpose")
    src = b.global_array("src", n * threads)  # threads block-rows of n each
    dst = b.global_array("dst", n * threads)

    with b.function("fft_worker", params=("wid", "lo", "hi")) as f:
        i = f.reg("i")
        blk = f.reg("blk")
        # Produce: fill the owned block-row.
        with f.for_loop(i, 0, n):
            f.store(src, f.param("wid") * n + i, f.param("wid") * 1000 + i)
        f.barrier(0, threads)
        # Transpose: gather block `wid` from EVERY row (all-to-all reads).
        with f.for_loop(blk, 0, threads):
            with f.for_loop(i, 0, block):
                f.store(
                    dst,
                    f.param("wid") * n + blk * block + i,
                    f.load(src, blk * n + f.param("wid") * block + i) * 2,
                )
        f.barrier(1, threads)

    with b.function("main") as f:
        for wid in range(threads):
            f.spawn("fft_worker", wid, 0, 0)
        f.join_all()

    return b.build(), WorkloadMeta()


def build(scale: int = 1):
    return build_par(scale, threads=1)


register(
    Workload(
        name="fft-transpose",
        suite="splash2x",
        build_seq=build,
        build_par=build_par,
        description="blocked matrix transpose with all-to-all communication",
    )
)
