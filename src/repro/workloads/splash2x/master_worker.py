"""master-worker — star communication analog.

A classic task-farm: the first thread produces task descriptors that every
worker consumes, and workers produce results only the master reads back.
The producer/consumer matrix is a star centred on the master — a third
distinct shape next to water-spatial's band and fft-transpose's all-to-all,
exercising that communication-pattern detection recovers topology, not
just intensity.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register


def build_par(scale: int = 1, threads: int = 4):
    tasks_per_worker = 16 * scale
    n_tasks = tasks_per_worker * threads
    b = ProgramBuilder("master-worker")
    tasks = b.global_array("tasks", n_tasks)
    results = b.global_array("results", n_tasks)
    total = b.global_scalar("total")

    with b.function("master", params=()) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, n_tasks):  # produce every task
            f.store(tasks, i, i * 7 + 1)
        f.barrier(0, threads + 1)
        f.barrier(1, threads + 1)  # wait for workers to finish
        with f.for_loop(i, 0, n_tasks):  # consume every result
            f.store(total, None, f.load(total) + f.load(results, i))

    with b.function("worker", params=("lo", "hi")) as f:
        i = f.reg("i")
        v = f.reg("v")
        f.barrier(0, threads + 1)
        with f.for_loop(i, f.param("lo"), f.param("hi")):
            f.set(v, f.load(tasks, i))
            f.store(results, i, v * v % 1009)
        f.barrier(1, threads + 1)

    with b.function("main") as f:
        f.spawn("master")
        for wid in range(threads):
            f.spawn("worker", wid * tasks_per_worker, (wid + 1) * tasks_per_worker)
        f.join_all()

    return b.build(), WorkloadMeta()


def build(scale: int = 1):
    return build_par(scale, threads=1)


register(
    Workload(
        name="master-worker",
        suite="splash2x",
        build_seq=build,
        build_par=build_par,
        description="task farm with star-shaped communication",
    )
)
