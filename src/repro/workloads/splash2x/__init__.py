"""SPLASH-2x analogs (communication-pattern workloads, Figure 9).

Three contrasting topologies: water-spatial (neighbour band),
fft-transpose (all-to-all), master-worker (star).
"""

from repro.workloads.splash2x import (  # noqa: F401
    fft_transpose,
    master_worker,
    water_spatial,
)

__all__ = ["fft_transpose", "master_worker", "water_spatial"]
