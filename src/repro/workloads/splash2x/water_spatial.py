"""water-spatial — spatial molecular-dynamics analog.

SPLASH-2's water-spatial partitions the simulation box into spatial cells,
one owner thread per cell slab; force computation reads neighbouring
slabs' particle data, so each thread communicates mostly with its spatial
neighbours.  Barrow-Williams et al. (the paper's reference [27]) report a
strongly neighbour-banded producer/consumer matrix for it — which is the
pattern Figure 9 recovers from cross-thread RAW dependences.

The analog: per step, every thread updates its own slab's positions
(produces), then computes forces reading its own and both neighbouring
slabs (consumes) — yielding the banded matrix.
"""

from __future__ import annotations

from repro.minivm import ProgramBuilder
from repro.workloads.base import Workload, WorkloadMeta, register
from repro.workloads.kernels import lcg_fill

STEPS = 2


def build_par(scale: int = 1, threads: int = 4):
    per_slab = 60 * scale
    n = per_slab * threads
    b = ProgramBuilder("water-spatial")
    pos = b.global_array("pos", n)
    force = b.global_array("force", n)

    with b.function("md_worker", params=("wid", "lo", "hi")) as f:
        i = f.reg("i")
        j = f.reg("j")
        acc = f.reg("acc")
        for step in range(STEPS):
            # Produce: integrate own slab's positions.
            with f.for_loop(i, f.param("lo"), f.param("hi")):
                f.store(pos, i, (f.load(pos, i) + f.load(force, i) / 16) % 1000)
            f.barrier(step * 2, threads)
            # Consume: forces from own + neighbour slabs (wrap-free band).
            with f.for_loop(i, f.param("lo"), f.param("hi")):
                f.set(acc, 0)
                # left neighbour sample
                with f.if_(f.param("lo").gt(0)):
                    f.set(acc, f.reg("acc") + f.load(pos, f.param("lo") - 1 - (i % 8)))
                # right neighbour sample
                with f.if_(f.param("hi").lt(n)):
                    f.set(acc, f.reg("acc") + f.load(pos, f.param("hi") + (i % 8)))
                # own-slab pair interactions
                with f.for_loop(j, f.param("lo"), f.param("hi"), step=per_slab // 8):
                    f.set(acc, f.reg("acc") + f.load(pos, j))
                f.store(force, i, f.reg("acc") % 500)
            f.barrier(step * 2 + 1, threads)

    with b.function("main") as f:
        lcg_fill(f, pos, n, seed=777)
        lcg_fill(f, force, n, seed=778)
        lo = 0
        for wid in range(threads):
            f.spawn("md_worker", wid, wid * per_slab, (wid + 1) * per_slab)
        f.join_all()

    return b.build(), WorkloadMeta()


def build(scale: int = 1):
    """Sequential fallback: single-slab run (profiling sanity only)."""
    return build_par(scale, threads=1)


register(
    Workload(
        name="water-spatial",
        suite="splash2x",
        build_seq=build,
        build_par=build_par,
        description="spatially-decomposed MD with neighbour communication",
    )
)
