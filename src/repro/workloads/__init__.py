"""Benchmark workload analogs.

The paper evaluates on NAS Parallel Benchmarks 3.3.1 (input W), the
Starbench suite (reference input), and splash2x.water-spatial.  Native
binaries and their inputs are not usable here, so each benchmark is rebuilt
as a *miniature but algorithmically real* MiniVM program: the CG analog
really runs conjugate-gradient iterations over a sparse operator, the IS
analog really bucket-sorts, kmeans really clusters, and the pthread variants
really spawn MiniVM threads with locks and barriers.  What matters for the
experiments is preserved: the dependence *structure* (which loops carry
dependences, which reduce, which are independent), the address/access-count
profile shape, and per-loop OpenMP-annotation ground truth for Table II.

Access through the registry::

    from repro.workloads import get_workload, workload_names, get_trace
    trace = get_trace("cg", scale=1)              # sequential variant
    trace = get_trace("kmeans", variant="par")    # pthread-style variant
"""

from repro.workloads.base import (
    Workload,
    WorkloadMeta,
    clear_trace_cache,
    enforce_cache_limit,
    get_trace,
    get_workload,
    register,
    set_trace_cache_limit,
    workload_names,
    workloads_in_suite,
)

# Importing the suite packages populates the registry.
from repro.workloads import nas as _nas  # noqa: F401
from repro.workloads import starbench as _starbench  # noqa: F401
from repro.workloads import splash2x as _splash2x  # noqa: F401

# Trace-level amplified replays (registered last: they re-tile the suites).
from repro.workloads import amplify as _amplify  # noqa: F401
from repro.workloads.amplify import (
    amplify_batch,
    amplify_to_spill,
    strip_loops,
)

__all__ = [
    "Workload",
    "WorkloadMeta",
    "amplify_batch",
    "amplify_to_spill",
    "clear_trace_cache",
    "enforce_cache_limit",
    "get_trace",
    "get_workload",
    "register",
    "set_trace_cache_limit",
    "strip_loops",
    "workload_names",
    "workloads_in_suite",
]
