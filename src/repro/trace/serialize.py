"""Trace (de)serialization.

Traces are stored as ``.npz`` archives: one array per column plus the three
intern tables.  This lets workload traces be generated once and replayed
across many profiler configurations, mirroring how the paper separates target
execution from dependence analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.common.errors import TraceFormatError
from repro.trace.batch import TraceBatch

_FORMAT_VERSION = 1
_COLUMN_NAMES = ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx")


def save_trace(batch: TraceBatch, path: str | Path) -> None:
    """Write ``batch`` to ``path`` as a compressed ``.npz`` archive."""
    meta = {
        "version": _FORMAT_VERSION,
        "var_names": list(batch.var_names),
        "file_names": list(batch.file_names),
        "ctx_stacks": [list(s) for s in batch.ctx_stacks],
    }
    arrays = {name: getattr(batch, name) for name in _COLUMN_NAMES}
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_trace(path: str | Path) -> TraceBatch:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        try:
            meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
            columns = {name: data[name] for name in _COLUMN_NAMES}
        except KeyError as exc:
            raise TraceFormatError(f"missing field in trace file {path}: {exc}")
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {meta.get('version')!r} in {path}"
        )
    return TraceBatch(
        **columns,
        var_names=tuple(meta["var_names"]),
        file_names=tuple(meta["file_names"]),
        ctx_stacks=tuple(tuple(s) for s in meta["ctx_stacks"]),
    )
