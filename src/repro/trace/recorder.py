"""The instrumentation runtime.

In the paper, an LLVM pass inserts calls to ``push_read``/``push_write``
(Figure 4) and to control-region markers; this class is the Python equivalent
of that runtime library.  An executing target program (the MiniVM
interpreter, or a synthetic workload generator) calls the methods below; the
recorder assigns global *access timestamps*, tracks each target thread's
dynamic loop stack, interns variable names and static loop contexts, and
appends rows to a :class:`~repro.trace.batch.TraceBuilder`.

Timestamps vs. stream order
---------------------------
Rows land in the trace in *push order*.  The ``ts`` column carries the
*access* timestamp.  For sequential targets the two always coincide.  For
multi-threaded targets the MiniVM interpreter may push an access later than
it occurred when the access is not protected by a lock (Section V-A/V-B of
the paper) — callers obtain a timestamp with :meth:`next_ts` at access time
and pass it to a later ``read``/``write`` call.  A worker thread observing
decreasing timestamps flags the dependence as a potential data race.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import MiniVmError
from repro.trace.batch import TraceBatch, TraceBuilder
from repro.trace import events as ev


class _ThreadState:
    """Per-target-thread dynamic loop stack + cached static-context id."""

    __slots__ = ("loop_sites", "loop_iters", "ctx_id", "alive")

    def __init__(self) -> None:
        self.loop_sites: list[int] = []  # encoded header locs, outermost first
        self.loop_iters: list[int] = []  # current iteration index per frame
        self.ctx_id = -1  # interned id of tuple(loop_sites)
        self.alive = True


class TraceRecorder:
    """Collects instrumented events from an executing target program."""

    def __init__(self, capacity: int = 1024) -> None:
        self._builder = TraceBuilder(capacity=capacity)
        self._ts = 0
        self._threads: dict[int, _ThreadState] = {}

    # -- intern helpers ----------------------------------------------------
    def intern_var(self, name: str) -> int:
        return self._builder.intern_var(name)

    def intern_file(self, name: str) -> int:
        return self._builder.intern_file(name)

    # -- timestamps ----------------------------------------------------------
    def next_ts(self) -> int:
        """Reserve and return the next access timestamp."""
        ts = self._ts
        self._ts += 1
        return ts

    def _state(self, tid: int) -> _ThreadState:
        st = self._threads.get(tid)
        if st is None:
            st = _ThreadState()
            self._threads[tid] = st
        return st

    def _emit(
        self,
        kind: int,
        tid: int,
        loc: int,
        addr: int,
        aux: int,
        var: int,
        ts: int | None,
        ctx: int,
    ) -> None:
        if ts is None:
            ts = self.next_ts()
        self._builder.append(kind, tid, loc, addr, aux, var, ts, ctx)

    def current_ctx(self, tid: int) -> int:
        """The thread's interned static-loop-context id right now."""
        return self._state(tid).ctx_id

    # -- memory accesses -----------------------------------------------------
    def read(
        self,
        addr: int,
        loc: int,
        var: int = -1,
        tid: int = 0,
        ts: int | None = None,
        ctx: int | None = None,
    ) -> None:
        """Record a load of ``addr`` at source location ``loc``.

        ``ts``/``ctx`` override the defaults for *delayed* pushes: the caller
        captured the access timestamp and loop context at access time and
        pushes the event later (Section V-A).
        """
        if ctx is None:
            ctx = self._state(tid).ctx_id
        self._emit(ev.READ, tid, loc, addr, 0, var, ts, ctx)

    def write(
        self,
        addr: int,
        loc: int,
        var: int = -1,
        tid: int = 0,
        ts: int | None = None,
        ctx: int | None = None,
    ) -> None:
        """Record a store to ``addr`` at source location ``loc``."""
        if ctx is None:
            ctx = self._state(tid).ctx_id
        self._emit(ev.WRITE, tid, loc, addr, 0, var, ts, ctx)

    # -- allocation lifecycle (variable-lifetime analysis) ---------------------
    def alloc(
        self, addr: int, size: int, loc: int = -1, var: int = -1, tid: int = 0
    ) -> None:
        self._emit(ev.ALLOC, tid, loc, addr, size, var, None, self._state(tid).ctx_id)

    def free(self, addr: int, size: int, loc: int = -1, tid: int = 0) -> None:
        self._emit(ev.FREE, tid, loc, addr, size, -1, None, self._state(tid).ctx_id)

    # -- control regions -------------------------------------------------------
    def loop_enter(self, site: int, tid: int = 0) -> None:
        """Enter the loop whose header is at encoded location ``site``."""
        st = self._state(tid)
        st.loop_sites.append(site)
        st.loop_iters.append(-1)  # first loop_iter() makes it 0
        st.ctx_id = self._builder.intern_ctx(tuple(st.loop_sites))
        self._emit(ev.LOOP_ENTER, tid, site, site, 0, -1, None, st.ctx_id)

    def loop_iter(self, site: int, tid: int = 0) -> None:
        """Mark the start of the next iteration of the innermost loop."""
        st = self._state(tid)
        if not st.loop_sites or st.loop_sites[-1] != site:
            raise MiniVmError(
                f"loop_iter for site {site} but innermost loop is "
                f"{st.loop_sites[-1] if st.loop_sites else None}"
            )
        st.loop_iters[-1] += 1
        self._emit(
            ev.LOOP_ITER, tid, site, site, st.loop_iters[-1], -1, None, st.ctx_id
        )

    def emit_block(
        self,
        tid: int,
        site: int,
        n_iters: int,
        kind: np.ndarray,
        loc: np.ndarray,
        addr: np.ndarray,
        aux: np.ndarray,
        var: np.ndarray,
    ) -> None:
        """Bulk-append ``n_iters`` whole iterations of the innermost loop.

        The caller (the affine fast path) pre-builds the per-row columns for
        a block of consecutive iterations of the loop at ``site`` — the
        LOOP_ITER markers and every access of every iteration, in exactly
        the order the tree-walking interpreter would have pushed them.  This
        method supplies what the recorder owns: the monotone ``ts`` range,
        the constant loop context, and the per-thread iteration bookkeeping
        that :meth:`loop_iter` normally advances one call at a time.
        """
        st = self._state(tid)
        if not st.loop_sites or st.loop_sites[-1] != site:
            raise MiniVmError(
                f"emit_block for site {site} but innermost loop is "
                f"{st.loop_sites[-1] if st.loop_sites else None}"
            )
        n_rows = len(kind)
        ts0 = self._ts
        self._ts += n_rows
        st.loop_iters[-1] += n_iters
        self._builder.append_rows(
            n_rows,
            kind=kind,
            tid=tid,
            loc=loc,
            addr=addr,
            aux=aux,
            var=var,
            ts=np.arange(ts0, ts0 + n_rows, dtype=np.int64),
            ctx=st.ctx_id,
        )

    def loop_exit(self, site: int, tid: int = 0, end_loc: int | None = None) -> None:
        """Exit the innermost loop; ``aux`` records executed iterations.

        ``end_loc`` is the source location of the loop's last line (the
        ``END loop`` marker of Figure 1); it defaults to the header site.
        """
        st = self._state(tid)
        if not st.loop_sites or st.loop_sites[-1] != site:
            raise MiniVmError(
                f"loop_exit for site {site} but innermost loop is "
                f"{st.loop_sites[-1] if st.loop_sites else None}"
            )
        iters = st.loop_iters.pop() + 1
        st.loop_sites.pop()
        old_ctx = st.ctx_id
        st.ctx_id = (
            self._builder.intern_ctx(tuple(st.loop_sites)) if st.loop_sites else -1
        )
        self._emit(
            ev.LOOP_EXIT,
            tid,
            site if end_loc is None else end_loc,
            site,
            iters,
            -1,
            None,
            old_ctx,
        )

    # -- synchronization ---------------------------------------------------------
    def lock_acquire(self, lock_id: int, loc: int = -1, tid: int = 0) -> None:
        self._emit(ev.LOCK_ACQ, tid, loc, lock_id, 0, -1, None, self._state(tid).ctx_id)

    def lock_release(self, lock_id: int, loc: int = -1, tid: int = 0) -> None:
        self._emit(ev.LOCK_REL, tid, loc, lock_id, 0, -1, None, self._state(tid).ctx_id)

    # -- functions / threads -------------------------------------------------------
    def func_enter(self, func_id: int, loc: int = -1, tid: int = 0) -> None:
        self._emit(ev.FUNC_ENTER, tid, loc, func_id, 0, -1, None, self._state(tid).ctx_id)

    def func_exit(self, func_id: int, loc: int = -1, tid: int = 0) -> None:
        self._emit(ev.FUNC_EXIT, tid, loc, func_id, 0, -1, None, self._state(tid).ctx_id)

    def thread_start(self, tid: int, parent_tid: int = 0) -> None:
        self._emit(ev.THREAD_START, tid, -1, 0, parent_tid, -1, None, -1)

    def thread_end(self, tid: int) -> None:
        st = self._state(tid)
        if st.loop_sites:
            raise MiniVmError(
                f"thread {tid} ended inside {len(st.loop_sites)} open loop(s)"
            )
        st.alive = False
        self._emit(ev.THREAD_END, tid, -1, 0, 0, -1, None, -1)

    # -- finish --------------------------------------------------------------------
    def build(self) -> TraceBatch:
        """Freeze the recorded stream into an immutable :class:`TraceBatch`."""
        for tid, st in self._threads.items():
            if st.loop_sites:
                raise MiniVmError(
                    f"trace ended with thread {tid} inside "
                    f"{len(st.loop_sites)} open loop(s)"
                )
        return self._builder.build()
