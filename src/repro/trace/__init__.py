"""Trace substrate: memory-access event streams.

The profiler in the paper consumes a stream of instrumented events emitted by
an LLVM pass: memory reads/writes annotated with source location and variable
name, allocation/deallocation events (for variable-lifetime analysis), loop
entry/iteration/exit markers (runtime control-flow information), lock
acquire/release (for multi-threaded targets, Figure 4), and thread lifecycle
events.  This package defines

* the event-kind encoding (:mod:`repro.trace.events`),
* :class:`TraceBatch` — an immutable structure-of-arrays trace held in numpy
  arrays, the unit every profiler engine consumes,
* :class:`TraceRecorder` — the instrumentation *runtime*: the API that an
  executing target program (our MiniVM interpreter) calls; it assigns global
  timestamps, interns variable names and static loop contexts, and appends to
  a growable builder,
* ``save_trace``/``load_trace`` — ``.npz`` (de)serialization.
"""

from repro.trace.events import (
    ALLOC,
    FREE,
    FUNC_ENTER,
    FUNC_EXIT,
    KIND_NAMES,
    LOCK_ACQ,
    LOCK_REL,
    LOOP_ENTER,
    LOOP_EXIT,
    LOOP_ITER,
    READ,
    THREAD_END,
    THREAD_START,
    WRITE,
    Event,
)
from repro.trace.batch import TraceBatch, TraceBuilder
from repro.trace.recorder import TraceRecorder
from repro.trace.serialize import load_trace, save_trace
from repro.trace.shm import (
    SharedBatch,
    SharedBatchMeta,
    attach_batch,
    share_batch,
)
from repro.trace.spill import (
    SpilledTraceBatch,
    TraceSpillWriter,
    is_spill,
    open_spill,
    spill_batch,
)

__all__ = [
    "ALLOC",
    "FREE",
    "FUNC_ENTER",
    "FUNC_EXIT",
    "KIND_NAMES",
    "LOCK_ACQ",
    "LOCK_REL",
    "LOOP_ENTER",
    "LOOP_EXIT",
    "LOOP_ITER",
    "READ",
    "THREAD_END",
    "THREAD_START",
    "WRITE",
    "Event",
    "SharedBatch",
    "SharedBatchMeta",
    "SpilledTraceBatch",
    "TraceBatch",
    "TraceBuilder",
    "TraceRecorder",
    "TraceSpillWriter",
    "attach_batch",
    "is_spill",
    "load_trace",
    "open_spill",
    "save_trace",
    "share_batch",
    "spill_batch",
]
