"""Structure-of-arrays trace storage.

A :class:`TraceBatch` is the unit every profiler engine consumes: eight
parallel numpy columns plus three intern tables (variable names, file names,
static loop contexts).  It is append-built through :class:`TraceBuilder`
(amortized O(1) growth) and immutable afterwards, so engines may share one
batch across experiments without copying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.errors import TraceFormatError
from repro.trace.events import Event, KIND_NAMES, READ, WRITE

_COLUMNS = (
    ("kind", np.uint8),
    ("tid", np.int32),
    ("loc", np.int32),
    ("addr", np.int64),
    ("aux", np.int64),
    ("var", np.int32),
    ("ts", np.int64),
    ("ctx", np.int32),
)


@dataclass(frozen=True)
class TraceBatch:
    """An immutable, column-oriented event trace.

    Attributes
    ----------
    kind, tid, loc, addr, aux, var, ts, ctx:
        Parallel numpy arrays; see :class:`repro.trace.events.Event` for the
        per-kind column semantics.
    var_names:
        Intern table mapping ``var`` ids to variable names.
    file_names:
        Intern table mapping file ids (high bits of ``loc``) to file names.
    ctx_stacks:
        Intern table mapping ``ctx`` ids to static loop stacks — tuples of
        encoded loop-site locations, outermost first.
    """

    kind: np.ndarray
    tid: np.ndarray
    loc: np.ndarray
    addr: np.ndarray
    aux: np.ndarray
    var: np.ndarray
    ts: np.ndarray
    ctx: np.ndarray
    var_names: tuple[str, ...] = ()
    file_names: tuple[str, ...] = ()
    ctx_stacks: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        n = len(self.kind)
        for name, _ in _COLUMNS:
            col = getattr(self, name)
            if len(col) != n:
                raise TraceFormatError(
                    f"column {name!r} has length {len(col)}, expected {n}"
                )

    def __len__(self) -> int:
        return len(self.kind)

    @property
    def n_events(self) -> int:
        return len(self.kind)

    @property
    def n_accesses(self) -> int:
        """Number of memory-access (READ/WRITE) events."""
        return int(np.count_nonzero((self.kind == READ) | (self.kind == WRITE)))

    @property
    def n_threads(self) -> int:
        """Number of distinct target-thread ids appearing in the trace."""
        if len(self.tid) == 0:
            return 0
        return int(len(np.unique(self.tid)))

    @property
    def n_unique_addresses(self) -> int:
        """Number of distinct addresses touched by READ/WRITE events."""
        mask = (self.kind == READ) | (self.kind == WRITE)
        if not mask.any():
            return 0
        return int(len(np.unique(self.addr[mask])))

    def access_mask(self) -> np.ndarray:
        """Boolean mask selecting READ/WRITE rows."""
        return (self.kind == READ) | (self.kind == WRITE)

    def select(self, index: np.ndarray) -> "TraceBatch":
        """Row-subset view (fancy-indexed copy) sharing the intern tables."""
        return TraceBatch(
            kind=self.kind[index],
            tid=self.tid[index],
            loc=self.loc[index],
            addr=self.addr[index],
            aux=self.aux[index],
            var=self.var[index],
            ts=self.ts[index],
            ctx=self.ctx[index],
            var_names=self.var_names,
            file_names=self.file_names,
            ctx_stacks=self.ctx_stacks,
        )

    def event(self, i: int) -> Event:
        """Decode row ``i`` into an :class:`Event` view (slow path)."""
        return Event(
            kind=int(self.kind[i]),
            tid=int(self.tid[i]),
            loc=int(self.loc[i]),
            addr=int(self.addr[i]),
            aux=int(self.aux[i]),
            var=int(self.var[i]),
            ts=int(self.ts[i]),
            ctx=int(self.ctx[i]),
        )

    def iter_events(self) -> Iterator[Event]:
        """Iterate decoded events in trace order (slow; reference engine/tests)."""
        for i in range(len(self)):
            yield self.event(i)

    def var_name(self, var_id: int) -> str:
        if var_id < 0 or var_id >= len(self.var_names):
            return "*"
        return self.var_names[var_id]

    def summary(self) -> str:
        """Human-readable one-paragraph description (used by the CLI)."""
        kinds, counts = np.unique(self.kind, return_counts=True)
        parts = ", ".join(
            f"{KIND_NAMES.get(int(k), str(int(k)))}={int(c)}"
            for k, c in zip(kinds, counts)
        )
        return (
            f"TraceBatch: {len(self)} events ({parts}); "
            f"{self.n_unique_addresses} unique addresses, "
            f"{self.n_threads} thread(s), {len(self.var_names)} variables"
        )


class TraceBuilder:
    """Growable column store that freezes into a :class:`TraceBatch`.

    Uses capacity-doubling numpy buffers rather than Python lists: traces run
    to millions of rows, and building them must not dominate workload setup.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._cap = max(16, capacity)
        self._n = 0
        self._cols = {
            name: np.empty(self._cap, dtype=dt) for name, dt in _COLUMNS
        }
        self.var_names: list[str] = []
        self._var_ids: dict[str, int] = {}
        self.file_names: list[str] = []
        self._file_ids: dict[str, int] = {}
        self.ctx_stacks: list[tuple[int, ...]] = []
        self._ctx_ids: dict[tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return self._n

    # -- intern tables ----------------------------------------------------
    def intern_var(self, name: str) -> int:
        vid = self._var_ids.get(name)
        if vid is None:
            vid = len(self.var_names)
            self.var_names.append(name)
            self._var_ids[name] = vid
        return vid

    def intern_file(self, name: str) -> int:
        fid = self._file_ids.get(name)
        if fid is None:
            fid = len(self.file_names)
            self.file_names.append(name)
            self._file_ids[name] = fid
        return fid

    def intern_ctx(self, stack: tuple[int, ...]) -> int:
        cid = self._ctx_ids.get(stack)
        if cid is None:
            cid = len(self.ctx_stacks)
            self.ctx_stacks.append(stack)
            self._ctx_ids[stack] = cid
        return cid

    # -- row append --------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap *= 2
        for name in self._cols:
            new = np.empty(cap, dtype=self._cols[name].dtype)
            new[: self._n] = self._cols[name][: self._n]
            self._cols[name] = new
        self._cap = cap

    def append(
        self,
        kind: int,
        tid: int,
        loc: int,
        addr: int,
        aux: int,
        var: int,
        ts: int,
        ctx: int,
    ) -> None:
        if self._n == self._cap:
            self._grow(self._n + 1)
        n = self._n
        c = self._cols
        c["kind"][n] = kind
        c["tid"][n] = tid
        c["loc"][n] = loc
        c["addr"][n] = addr
        c["aux"][n] = aux
        c["var"][n] = var
        c["ts"][n] = ts
        c["ctx"][n] = ctx
        self._n = n + 1

    def append_rows(self, n: int, **cols: "np.ndarray | int") -> None:
        """Block-append ``n`` rows at once from column arrays or scalars.

        Scalars broadcast over the block (numpy assignment semantics); array
        columns must have length ``n``.  Missing columns default to ``-1``
        for ``loc``/``var``/``ctx`` and ``0`` otherwise; ``ts`` defaults to a
        fresh monotone range.  This is the bulk-emission primitive behind the
        producer fast path and synthetic trace generators: one call replaces
        ``n`` per-row :meth:`append` calls.
        """
        if n < 0:
            raise TraceFormatError(f"append_rows of {n} rows")
        unknown = set(cols) - {name for name, _ in _COLUMNS}
        if unknown:
            raise TraceFormatError(f"unknown trace columns: {sorted(unknown)}")
        for name, v in cols.items():
            if np.ndim(v) != 0 and len(v) != n:
                raise TraceFormatError(
                    f"column {name!r} has length {len(v)}, expected {n}"
                )
        if n == 0:
            return
        if self._n + n > self._cap:
            self._grow(self._n + n)
        start = self._n
        defaults = {"loc": -1, "var": -1, "ctx": -1}
        for name, _ in _COLUMNS:
            dst = self._cols[name][start : start + n]
            if name in cols:
                dst[:] = cols[name]
            elif name == "ts":
                dst[:] = np.arange(start, start + n, dtype=np.int64)
            else:
                dst[:] = defaults.get(name, 0)
        self._n = start + n

    def extend_columns(self, **cols: np.ndarray) -> None:
        """Bulk-append aligned column arrays (synthetic workload fast path).

        Thin wrapper over :meth:`append_rows` that infers the row count from
        the (required, equal-length) array columns.
        """
        lengths = {len(v) for v in cols.values()}
        if len(lengths) != 1:
            raise TraceFormatError(f"unequal column lengths: {sorted(lengths)}")
        self.append_rows(lengths.pop(), **cols)

    def build(self) -> TraceBatch:
        """Freeze into an immutable :class:`TraceBatch` (copies the columns)."""
        return TraceBatch(
            **{name: self._cols[name][: self._n].copy() for name, _ in _COLUMNS},
            var_names=tuple(self.var_names),
            file_names=tuple(self.file_names),
            ctx_stacks=tuple(self.ctx_stacks),
        )
