"""Zero-copy trace transport over POSIX shared memory.

The processes execution mode (``--mode processes``) must hand each worker
process the *whole* :class:`~repro.trace.batch.TraceBatch` — workers route
rows by address hash, so every worker reads every column — without pickling
megabytes of numpy arrays per chunk.  The paper's pipeline gets this for
free from threads; here we reproduce it across address spaces:

* :func:`share_batch` copies the batch's eight columns once into a single
  :class:`multiprocessing.shared_memory.SharedMemory` block (8-byte-aligned
  offsets) and returns a small picklable :class:`SharedBatchMeta` describing
  the layout plus the (tiny) intern tables.
* :func:`attach_batch` maps the block in a worker process and rebuilds the
  batch as read-only numpy views **into the shared pages** — no copy, no
  per-chunk serialization.  Only chunk index ranges ever cross the queues.

The creator owns the block: call :meth:`SharedBatch.close` (which unlinks)
exactly once after all workers have exited.  Attachments in workers are
closed on process exit; Python 3.11's ``resource_tracker`` would complain
about (and double-unlink) blocks it did not create, so :func:`attach_batch`
registers the attachment with the tracker suppressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.trace.batch import _COLUMNS, TraceBatch


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class SharedBatchMeta:
    """Picklable layout descriptor for one shared batch block.

    A spilled (mmap-backed) batch needs no block at all — the columns are
    already file-backed and every process can map them independently.  For
    those, ``path`` names the spill directory and ``name``/``columns`` are
    empty sentinels.
    """

    name: str
    n_events: int
    #: (column name, dtype string, byte offset) in declaration order.
    columns: tuple[tuple[str, str, int], ...]
    var_names: tuple[str, ...]
    file_names: tuple[str, ...]
    ctx_stacks: tuple[tuple[int, ...], ...]
    #: Spill directory to re-map worker-side (``None`` = shm transport).
    path: str | None = None


class SharedBatch:
    """Creator-side handle: the block plus its layout meta."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory | None,
        meta: SharedBatchMeta,
    ) -> None:
        self.shm = shm
        self.meta = meta

    @property
    def nbytes(self) -> int:
        return self.shm.size if self.shm is not None else 0

    def close(self) -> None:
        """Release and unlink the block (creator-side, call once)."""
        if self.shm is None:  # spilled batch: nothing was allocated
            return
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


def share_batch(batch: TraceBatch) -> SharedBatch:
    """Describe ``batch`` for worker processes.

    In-memory batches are copied once into a shared-memory block.  Spilled
    batches skip the copy entirely — a 10⁸-event trace must never be
    materialized — and ship only the spill path; workers re-map the files.
    """
    spill_path = getattr(batch, "spill_path", "")
    if spill_path:
        meta = SharedBatchMeta(
            name="",
            n_events=len(batch),
            columns=(),
            var_names=batch.var_names,
            file_names=batch.file_names,
            ctx_stacks=batch.ctx_stacks,
            path=str(spill_path),
        )
        return SharedBatch(None, meta)
    layout: list[tuple[str, str, int]] = []
    offset = 0
    for name, _ in _COLUMNS:
        col = np.ascontiguousarray(getattr(batch, name))
        layout.append((name, col.dtype.str, offset))
        offset = _align8(offset + col.nbytes)
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for (name, dtype, off), (cname, _) in zip(layout, _COLUMNS):
        col = np.ascontiguousarray(getattr(batch, cname))
        dst = np.ndarray(len(col), dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        dst[:] = col
    meta = SharedBatchMeta(
        name=shm.name,
        n_events=len(batch),
        columns=tuple(layout),
        var_names=batch.var_names,
        file_names=batch.file_names,
        ctx_stacks=batch.ctx_stacks,
    )
    return SharedBatch(shm, meta)


def attach_batch(
    meta: SharedBatchMeta,
) -> tuple[TraceBatch, shared_memory.SharedMemory | None]:
    """Map a shared block and rebuild the batch as zero-copy views.

    Returns the batch plus the attachment handle; the caller keeps the
    handle alive for as long as the batch is used (the views alias its
    buffer) and ``close()``s it when done — never ``unlink()``.  For a
    spilled batch the handle is ``None``: the columns are private file
    mappings with no creator-owned resource to release.
    """
    if meta.path is not None:
        from repro.trace.spill import open_spill

        return open_spill(meta.path), None
    # SharedMemory.__init__ registers *attachments* with the resource
    # tracker too (fixed only in 3.13's ``track=False``); the tracker would
    # then unlink the block when this process exits, yanking it out from
    # under the creator and the sibling workers.  Suppress registration for
    # the duration of the attach.
    orig_register = resource_tracker.register

    def _no_register(name: str, rtype: str) -> None:  # pragma: no cover
        if rtype != "shared_memory":
            orig_register(name, rtype)

    resource_tracker.register = _no_register
    try:
        shm = shared_memory.SharedMemory(name=meta.name)
    finally:
        resource_tracker.register = orig_register
    cols: dict[str, np.ndarray] = {}
    for name, dtype, off in meta.columns:
        arr = np.ndarray(
            meta.n_events, dtype=np.dtype(dtype), buffer=shm.buf, offset=off
        )
        arr.flags.writeable = False
        cols[name] = arr
    batch = TraceBatch(
        **cols,
        var_names=meta.var_names,
        file_names=meta.file_names,
        ctx_stacks=meta.ctx_stacks,
    )
    return batch, shm
