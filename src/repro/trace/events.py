"""Event-kind encoding and a row-view dataclass.

Hot paths never touch :class:`Event` objects — they index numpy columns
directly — but the dataclass view keeps the reference engine, tests, and
error messages readable.
"""

from __future__ import annotations

from dataclasses import dataclass

# Event kinds (uint8 column values).  READ/WRITE are the hot ones; everything
# else is control/bookkeeping and typically <1% of a trace.
READ = 0
WRITE = 1
ALLOC = 2
FREE = 3
LOOP_ENTER = 4
LOOP_ITER = 5
LOOP_EXIT = 6
LOCK_ACQ = 7
LOCK_REL = 8
FUNC_ENTER = 9
FUNC_EXIT = 10
THREAD_START = 11
THREAD_END = 12

KIND_NAMES = {
    READ: "READ",
    WRITE: "WRITE",
    ALLOC: "ALLOC",
    FREE: "FREE",
    LOOP_ENTER: "LOOP_ENTER",
    LOOP_ITER: "LOOP_ITER",
    LOOP_EXIT: "LOOP_EXIT",
    LOCK_ACQ: "LOCK_ACQ",
    LOCK_REL: "LOCK_REL",
    FUNC_ENTER: "FUNC_ENTER",
    FUNC_EXIT: "FUNC_EXIT",
    THREAD_START: "THREAD_START",
    THREAD_END: "THREAD_END",
}

#: Kinds that carry a memory address in the ``addr`` column.
MEMORY_KINDS = (READ, WRITE)


@dataclass(frozen=True, slots=True)
class Event:
    """One trace row, decoded.

    Column semantics by kind:

    ========== ======================= =========================
    kind       addr                    aux
    ========== ======================= =========================
    READ/WRITE memory address          0
    ALLOC      base address            size in bytes
    FREE       base address            size in bytes
    LOOP_*     loop site (encoded loc) iteration index / total
    LOCK_*     lock id                 0
    FUNC_*     function id             0
    THREAD_*   0                       parent tid / 0
    ========== ======================= =========================
    """

    kind: int
    tid: int
    loc: int  # encoded SourceLocation, -1 for "none"
    addr: int
    aux: int
    var: int  # interned variable-name id, -1 for "none"
    ts: int  # global monotone timestamp (push order)
    ctx: int  # interned static-loop-stack id, -1 outside any loop

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"?{self.kind}")

    @property
    def is_memory_access(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE
