"""mmap-backed trace spill tier — traces larger than RAM, streamed.

A spilled trace is a directory (conventionally ``<key>.trace.spill/``)
holding one raw binary file per trace column plus a ``meta.json`` with the
intern tables.  :func:`open_spill` rebuilds it as a
:class:`SpilledTraceBatch` whose columns are read-only ``np.memmap`` views:
nothing is resident until touched, windows page in on demand, and
:meth:`SpilledTraceBatch.release_window` hands consumed pages back to the
kernel (``madvise(MADV_DONTNEED)``) so peak RSS stays bounded by the live
window regardless of trace length.  That release is purely a residency
hint — dropped pages of the read-only file mapping are re-read
transparently on the next access — so callers may release aggressively.

:class:`TraceSpillWriter` appends column blocks segment-wise, so a
synthetic generator (the trace amplifier) can emit a 10⁸-event trace
without ever holding more than one segment in memory.

Exact ``n_unique_addresses`` is inherently Ω(unique) memory — on amplified
traces that is O(n), which would defeat the flat-RSS point.  Writers that
*know* the unique count (the amplifier does: its tiles are
address-disjoint) store it as ``unique_addresses_hint``; the batch property
answers from the hint and only falls back to the exact scan when no hint
was recorded.
"""

from __future__ import annotations

import json
import mmap
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import TraceFormatError
from repro.trace.batch import _COLUMNS, TraceBatch

_SPILL_VERSION = 1
_META_NAME = "meta.json"

#: Suffix of spill directories created by the trace cache layer.
SPILL_SUFFIX = ".trace.spill"


@dataclass(frozen=True)
class SpilledTraceBatch(TraceBatch):
    """A :class:`TraceBatch` whose columns are read-only memmap views."""

    #: Directory the columns are mapped from.
    spill_path: str = ""
    #: Writer-declared distinct READ/WRITE address count (``None`` = unknown).
    unique_addresses_hint: int | None = None

    @property
    def n_unique_addresses(self) -> int:
        if self.unique_addresses_hint is not None:
            return int(self.unique_addresses_hint)
        return super().n_unique_addresses

    def release_window(self, start: int, end: int) -> None:
        """Drop row range ``[start, end)``'s resident pages (RSS hint only).

        Resident pages of a file-backed mapping count toward ``ru_maxrss``
        like anonymous memory, so a streaming consumer that never releases
        would show trace-sized peak RSS even though nothing was copied.
        """
        if end <= start:
            return
        page = mmap.PAGESIZE
        for name, _ in _COLUMNS:
            col = getattr(self, name)
            mm = getattr(col, "_mmap", None)
            if mm is None or not hasattr(mm, "madvise"):
                continue  # plain array column, or platform without madvise
            lo = (start * col.itemsize) // page * page
            hi = min(len(mm), -(-(end * col.itemsize) // page) * page)
            if hi > lo:
                mm.madvise(mmap.MADV_DONTNEED, lo, hi - lo)


class TraceSpillWriter:
    """Segment-wise column appender producing a spill directory.

    Use as a context manager (or call :meth:`close`); the directory is not
    a valid spill until ``meta.json`` lands, which only happens on a clean
    close — a crashed writer leaves no half-readable trace behind.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._files = {
            name: open(self.path / f"{name}.bin", "wb") for name, _ in _COLUMNS
        }
        self._dtypes = {name: np.dtype(dt) for name, dt in _COLUMNS}
        self.n_events = 0
        self.var_names: tuple[str, ...] = ()
        self.file_names: tuple[str, ...] = ()
        self.ctx_stacks: tuple[tuple[int, ...], ...] = ()
        self.unique_addresses_hint: int | None = None
        self._closed = False

    def __enter__(self) -> "TraceSpillWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        if any(exc):
            self.abort()
        else:
            self.close()

    def set_intern_tables(
        self,
        var_names: tuple[str, ...],
        file_names: tuple[str, ...],
        ctx_stacks: tuple[tuple[int, ...], ...],
    ) -> None:
        self.var_names = tuple(var_names)
        self.file_names = tuple(file_names)
        self.ctx_stacks = tuple(tuple(s) for s in ctx_stacks)

    def set_unique_hint(self, n_unique: int) -> None:
        """Declare the exact distinct READ/WRITE address count."""
        self.unique_addresses_hint = int(n_unique)

    def append_columns(self, **cols: np.ndarray) -> None:
        """Append one aligned segment of all eight columns."""
        missing = {name for name, _ in _COLUMNS} - set(cols)
        if missing:
            raise TraceFormatError(f"missing spill columns: {sorted(missing)}")
        lengths = {len(v) for v in cols.values()}
        if len(lengths) != 1:
            raise TraceFormatError(f"unequal column lengths: {sorted(lengths)}")
        n = lengths.pop()
        for name, _ in _COLUMNS:
            arr = np.ascontiguousarray(cols[name], dtype=self._dtypes[name])
            self._files[name].write(arr.tobytes())
        self.n_events += n

    def append_batch(self, batch: TraceBatch) -> None:
        """Append a whole in-memory batch as one segment (adopting its
        intern tables when none were set yet)."""
        if not self.var_names and batch.var_names:
            self.var_names = batch.var_names
        if not self.file_names and batch.file_names:
            self.file_names = batch.file_names
        if not self.ctx_stacks and batch.ctx_stacks:
            self.ctx_stacks = batch.ctx_stacks
        self.append_columns(
            **{name: getattr(batch, name) for name, _ in _COLUMNS}
        )

    def close(self) -> Path:
        """Flush the columns and commit ``meta.json``; returns the path."""
        if self._closed:
            return self.path
        for f in self._files.values():
            f.close()
        meta = {
            "version": _SPILL_VERSION,
            "n_events": self.n_events,
            "columns": {name: np.dtype(dt).str for name, dt in _COLUMNS},
            "var_names": list(self.var_names),
            "file_names": list(self.file_names),
            "ctx_stacks": [list(s) for s in self.ctx_stacks],
            "unique_addresses_hint": self.unique_addresses_hint,
        }
        tmp = self.path / (_META_NAME + ".tmp")
        tmp.write_text(json.dumps(meta))
        tmp.rename(self.path / _META_NAME)
        self._closed = True
        return self.path

    def abort(self) -> None:
        """Discard the partial spill (no meta.json was ever committed)."""
        if self._closed:
            return
        for f in self._files.values():
            f.close()
        self._closed = True
        shutil.rmtree(self.path, ignore_errors=True)


def is_spill(path: str | Path) -> bool:
    """True when ``path`` is a committed spill directory."""
    return (Path(path) / _META_NAME).is_file()


def open_spill(path: str | Path) -> SpilledTraceBatch:
    """Map a spill directory as a zero-copy :class:`SpilledTraceBatch`."""
    path = Path(path)
    meta_path = path / _META_NAME
    if not meta_path.is_file():
        raise TraceFormatError(f"not a spill directory (no meta.json): {path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != _SPILL_VERSION:
        raise TraceFormatError(
            f"unsupported spill version {meta.get('version')!r} in {path}"
        )
    n = int(meta["n_events"])
    cols: dict[str, np.ndarray] = {}
    for name, dt in _COLUMNS:
        dtype = np.dtype(meta["columns"].get(name, np.dtype(dt).str))
        fpath = path / f"{name}.bin"
        expected = n * dtype.itemsize
        actual = fpath.stat().st_size if fpath.is_file() else -1
        if actual != expected:
            raise TraceFormatError(
                f"spill column {name!r} in {path} has {actual} bytes, "
                f"expected {expected}"
            )
        if n == 0:
            cols[name] = np.empty(0, dtype=dtype)
        else:
            cols[name] = np.memmap(fpath, dtype=dtype, mode="r", shape=(n,))
    hint = meta.get("unique_addresses_hint")
    return SpilledTraceBatch(
        **cols,
        var_names=tuple(meta["var_names"]),
        file_names=tuple(meta["file_names"]),
        ctx_stacks=tuple(tuple(s) for s in meta["ctx_stacks"]),
        spill_path=str(path),
        unique_addresses_hint=None if hint is None else int(hint),
    )


def spill_batch(batch: TraceBatch, path: str | Path) -> SpilledTraceBatch:
    """Write an in-memory batch out as a spill and map it back."""
    with TraceSpillWriter(path) as w:
        w.append_batch(batch)
        w.set_unique_hint(batch.n_unique_addresses)
    return open_spill(path)
