"""Cost parameters and their calibration.

All costs are in abstract *native-access units*: the uninstrumented target
spends 1 unit per memory access, so a computed profiling time of 190 units
per access *is* a 190x slowdown.  Calibration anchors (suite averages from
the paper, Section VI-B):

=====================  ======  =========================================
anchor                 value   parameter(s) it pins
=====================  ======  =========================================
serial slowdown        ~190x   ``capture + analyze = 189``
16T slowdown           ~78x    producer-bound limit => ``capture ~ 75``
8T slowdown            ~97x    producer + critical-worker coupling
lock-based overhead    1.3-1.6x ``lock_tax_per_access ~ 40``
MT-target 8T / 16T     346/261  ``mt_capture_extra``, ``mt_worker_factor``
=====================  ======  =========================================

The Amdahl fit behind the producer split: speedups 190/97 = 1.96 (8T) and
190/78 = 2.43 (16T) imply a serial fraction of ~0.40 of the profiling work;
that serial part is the paper's main thread, which executes the target and
distributes accesses — our ``capture`` cost.  The remaining ~0.60 is the
per-access signature analysis that parallelizes across workers but remains
sequential *per address*, which is why the critical (most-loaded) worker is
charged in series with the producer (``overlap = 1``): they contend for the
same memory system, and the paper's own scaling numbers fit that additive
coupling, not a perfectly overlapped pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class CostParams:
    """Per-operation costs in native-access units (see module docstring)."""

    #: Uninstrumented target cost per memory access (the unit).
    native_access: float = 1.0
    #: Producer side, per access: instrumentation capture, access statistics,
    #: chunk append, and routing decision.
    capture: float = 75.0
    #: Worker side, per access: signature membership + insert, dependence
    #: construction, local-map merge.
    analyze: float = 114.0
    #: Per-chunk queue handoff (push + pop), lock-free.
    chunk_handoff: float = 200.0
    #: Worker-side cost of a broadcast control row (loop-frame push/pop,
    #: free-range trigger) — far cheaper than signature analysis.
    broadcast_row: float = 5.0
    #: Producer-side cost of replicating one control row into one worker's
    #: chunk — a single buffered append.
    broadcast_append: float = 0.5
    #: Extra per-access cost of the lock-based queue variant (fine-grained
    #: synchronization of the shared buffer that chunked lock-free queues
    #: eliminate).
    lock_tax_per_access: float = 40.0
    #: Per-entry cost of the final merge of duplicate-free local maps.
    merge_per_entry: float = 50.0
    #: Fixed cost of one rebalancing round (quiesce handled separately by
    #: the pipeline replay) plus per-migrated-address signature move.
    rebalance_fixed: float = 50_000.0
    migrate_per_address: float = 500.0
    #: Multi-threaded targets: lock region around access+push (Figure 4),
    #: charged to the producer/target side per access...
    mt_capture_extra: float = 100.0
    #: ...and contention/extended-record factor on worker analysis.  The
    #: paper's two MT anchors (346x at 8T, 261x at 16T) differ by 85x of
    #: native time between the half-share and quarter-share points, which
    #: pins the parallelizable MT analysis cost at ~12x the sequential-
    #: target one: timestamp-order checking, thread-interleaving records,
    #: and the extended dependence representation all live on this path.
    mt_worker_factor: float = 12.0
    #: Coupling between producer and the critical worker: 0 = perfectly
    #: overlapped pipeline (makespan = max), 1 = fully serialized (sum).
    overlap: float = 1.0

    def with_(self, **changes: Any) -> "CostParams":
        return replace(self, **changes)

    @property
    def serial_slowdown(self) -> float:
        """Closed form for the serial profiler: everything in one thread."""
        return (self.native_access + self.capture + self.analyze) / self.native_access
