"""Execution cost and memory models.

The paper measures wall-clock slowdowns of an LLVM-instrumented native
profiler on a 16-core Xeon.  A Python re-implementation cannot reproduce
those wall-clock ratios directly (its own interpretive overhead and the GIL
dominate), so — per the reproduction's substitution policy (DESIGN.md) — the
timing figures are regenerated from a **calibrated cost model** driven by
the *measured pipeline behaviour* of our real implementation: the actual
chunk sequence, per-worker access loads, rebalance points, and queue
statistics produced by :class:`~repro.parallel.ParallelProfiler`.

What is modelled vs. measured:

* measured — address->worker routing, per-chunk sizes and order, load
  imbalance, rebalancing events, dependence-store sizes: all come from real
  runs of this repository's profiler on real traces.
* modelled — per-operation costs (instrumentation capture, signature
  analysis, queue handoff, lock tax, target-side lock regions), calibrated
  once against the paper's aggregate anchors (serial 190x; Amdahl fit of
  the 8T/16T points giving a ~40% producer-side serial fraction; lock-based
  1.3-1.6x above lock-free; MT-target 346x/261x).  Calibration uses only
  suite-level averages, never per-benchmark numbers, so per-benchmark
  variation emerges from the measured pipeline data.

:mod:`repro.costmodel.memory` does the analogous job for Figures 7 and 8,
combining configured signature sizes with measured queue/store volumes.
"""

from repro.costmodel.costs import CostParams
from repro.costmodel.pipeline import (
    PipelineEstimate,
    SpeedupValidation,
    estimate_parallel,
    estimate_serial,
    validate_speedup,
)
from repro.costmodel.memory import MemoryEstimate, estimate_memory

__all__ = [
    "CostParams",
    "MemoryEstimate",
    "PipelineEstimate",
    "SpeedupValidation",
    "estimate_memory",
    "estimate_parallel",
    "estimate_serial",
    "validate_speedup",
]
