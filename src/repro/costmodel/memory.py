"""Memory model for Figures 7 and 8.

The profiler's resident memory decomposes into

* **signatures** — configured: ``2 x slots_per_worker x slot_bytes`` per
  worker (the paper's accounting uses 4-byte slots; ours carry a wider
  payload, selectable via ``slot_bytes``),
* **queues/chunks** — measured: the chunk pool's high-water mark times the
  bytes one buffered access record occupies (back-pressure from slow workers
  shows up here, which is what makes md5\\@16T the paper's outlier),
* **dependence store** — measured entry count times a per-entry estimate,
* **target footprint** — the traced program's own data (unique addresses x
  element size) plus interpreter constant,
* **MT extras** — thread-interleaving records (lock events, timestamps) and
  the wider dependence representation, only for multi-threaded targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ProfilerConfig
from repro.parallel.engine import ParallelRunInfo

#: Paper-style signature accounting: each slot stores a source line.
PAPER_SLOT_BYTES = 4
#: One buffered access record in a chunk: address + location + var + thread.
ACCESS_RECORD_BYTES = 24
#: One merged dependence entry in a map (key + record + container overhead).
DEP_ENTRY_BYTES = 96
#: Fixed runtime footprint (code, allocator, bookkeeping).
BASE_BYTES = 8 << 20


@dataclass
class MemoryEstimate:
    """Byte-level breakdown of profiler memory."""

    signatures: int
    queues: int
    dep_store: int
    target: int
    mt_extra: int
    base: int

    @property
    def total(self) -> int:
        return (
            self.signatures
            + self.queues
            + self.dep_store
            + self.target
            + self.mt_extra
            + self.base
        )

    @property
    def total_mb(self) -> float:
        return self.total / (1 << 20)


def estimate_memory(
    config: ProfilerConfig,
    info: ParallelRunInfo | None,
    store_entries: int,
    n_unique_addresses: int,
    n_sync_events: int = 0,
    mt_target: bool = False,
    slot_bytes: int = PAPER_SLOT_BYTES,
) -> MemoryEstimate:
    """Combine configured signature sizes with measured run volumes.

    ``info=None`` models the serial profiler (no queues or chunk pool).
    """
    signatures = 2 * config.slots_per_worker * slot_bytes * config.workers
    if info is not None:
        queues = info.chunks_allocated * config.chunk_size * ACCESS_RECORD_BYTES
    else:
        queues = 0
    dep_store = store_entries * DEP_ENTRY_BYTES
    target = n_unique_addresses * 8 * 2  # data + page/alloc overhead
    mt_extra = 0
    if mt_target:
        # Interleaving records (lock events, per-access timestamps kept until
        # push) plus the extended thread-id'd dependence representation.
        mt_extra = n_sync_events * 48 + dep_store // 4 + queues // 2
    return MemoryEstimate(
        signatures=signatures,
        queues=queues,
        dep_store=dep_store,
        target=target,
        mt_extra=mt_extra,
        base=BASE_BYTES,
    )
