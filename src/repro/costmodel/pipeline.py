"""Discrete-event replay of the profiling pipeline.

``estimate_parallel`` walks the *real* chunk sequence a
:class:`~repro.parallel.ParallelProfiler` run produced (``info.chunk_log``)
through a virtual-time model of Figure 2's pipeline:

* the producer spends ``capture`` per access and a handoff per chunk; if the
  target queue is full (``queue_depth`` chunks in flight), it stalls until
  the worker starts an older chunk — exactly the back-pressure of the real
  implementation;
* each worker processes its chunks FIFO at ``analyze`` per access;
* rebalance markers quiesce the pipeline (producer waits for all workers)
  and charge the migration cost;
* the makespan couples the producer with the critical worker according to
  ``overlap`` (see :mod:`repro.costmodel.costs` for why the default is
  fully coupled), and the final merge pays per surviving store entry.

Per-benchmark differences (imbalance, rebalances, chunk counts) therefore
come from measured behaviour; only the per-operation constants are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.costs import CostParams
from repro.parallel.engine import ParallelRunInfo


@dataclass
class PipelineEstimate:
    """Virtual-time results of one pipeline replay."""

    slowdown: float
    native_time: float
    producer_time: float
    worker_busy: list[float]
    critical_worker_time: float
    queue_wait_time: float
    merge_time: float
    rebalance_time: float
    makespan: float


def estimate_serial(
    n_accesses: int,
    params: CostParams | None = None,
    mt_target: bool = False,
    n_control_events: int = 0,
) -> float:
    """Slowdown of the serial profiler (single thread does everything).

    ``n_control_events`` (loop markers, alloc/free) adds the per-benchmark
    variation around the ~190x anchor: loop-dense programs pay more
    bookkeeping per access.
    """
    p = params if params is not None else CostParams()
    per_access = p.native_access + p.capture + p.analyze
    if mt_target:
        per_access += p.mt_capture_extra + (p.mt_worker_factor - 1.0) * p.analyze
    total = n_accesses * per_access + n_control_events * p.broadcast_row
    native = max(n_accesses, 1) * p.native_access
    return total / native if n_accesses else per_access / p.native_access


def estimate_parallel(
    info: ParallelRunInfo,
    n_accesses: int,
    store_entries: int,
    params: CostParams | None = None,
    lock_free: bool = True,
    queue_depth: int = 32,
    mt_target: bool = False,
) -> PipelineEstimate:
    """Replay ``info.chunk_log`` through the virtual-time pipeline."""
    p = params if params is not None else CostParams()
    n_workers = max(info.n_workers, 1)

    capture = p.capture + (p.mt_capture_extra if mt_target else 0.0)
    analyze = p.analyze * (p.mt_worker_factor if mt_target else 1.0)
    lock_tax = 0.0 if lock_free else p.lock_tax_per_access

    # Chunk rows mix memory accesses with broadcast control rows (loop
    # markers, frees) that every worker receives but processes at a tiny
    # cost.  Scale each side's per-row charge so that per-worker totals
    # equal accesses*analyze + broadcast*broadcast_row (and analogously for
    # the producer), using the measured per-worker access loads.
    rows_per_worker = [0] * n_workers
    for w, rows in info.chunk_log:
        if w >= 0:
            rows_per_worker[w] += rows
    total_rows = sum(rows_per_worker)
    # Without measured per-worker access counts, treat every row as an
    # access (synthetic chunk logs in tests and what-if studies).
    accesses_per_worker = list(info.per_worker_accesses) or list(rows_per_worker)
    worker_row_cost = []
    for w in range(n_workers):
        rw = rows_per_worker[w]
        aw = min(accesses_per_worker[w] if w < len(accesses_per_worker) else 0, rw)
        cost = (aw * (analyze + lock_tax) + (rw - aw) * p.broadcast_row) / rw if rw else 0.0
        worker_row_cost.append(cost)
    total_acc = min(sum(accesses_per_worker), total_rows) if total_rows else 0
    producer_row_cost = (
        (
            total_acc * (capture + lock_tax)
            + (total_rows - total_acc) * p.broadcast_append
        )
        / total_rows
        if total_rows
        else 0.0
    )

    producer = 0.0
    queue_wait = 0.0
    rebalance_time = 0.0
    worker_free = [0.0] * n_workers  # when each worker finishes current work
    worker_busy = [0.0] * n_workers  # accumulated processing time
    # Start times of in-flight chunks per worker: a queue slot frees when the
    # worker *starts* the chunk (pops it off the ring).
    in_flight: list[list[float]] = [[] for _ in range(n_workers)]

    for w, rows in info.chunk_log:
        if w < 0:  # rebalance marker: quiesce + migration charge
            drain = max([producer] + worker_free)
            rebalance_time += (drain - producer) + p.rebalance_fixed
            producer = drain + p.rebalance_fixed
            migrated = (
                info.addresses_migrated / max(info.rebalance_rounds, 1)
            )
            producer += migrated * p.migrate_per_address
            continue
        producer += rows * producer_row_cost + p.chunk_handoff / 2.0
        # Back-pressure: wait for a free slot in worker w's ring.
        fl = in_flight[w]
        while len(fl) >= queue_depth:
            start = fl.pop(0)
            if start > producer:
                queue_wait += start - producer
                producer = start
        start = max(worker_free[w], producer)
        cost = rows * worker_row_cost[w] + p.chunk_handoff / 2.0
        worker_free[w] = start + cost
        worker_busy[w] += cost
        fl.append(start)

    critical = max(worker_busy) if worker_busy else 0.0
    merge_time = store_entries * p.merge_per_entry
    # Coupled makespan: the producer and the critical worker share the
    # memory system (overlap=1 -> additive, the paper's Amdahl behaviour);
    # tail completion of the other workers is covered by max().
    overlapped = max(producer, max(worker_free, default=0.0))
    coupled = producer + p.overlap * critical
    makespan = max(overlapped, coupled) + merge_time

    native = n_accesses * p.native_access
    if mt_target:
        # The paper accumulates native time over target threads; our trace
        # already counts every thread's accesses, so the sum is unchanged.
        native = max(native, 1.0)
    return PipelineEstimate(
        slowdown=makespan / max(native, 1.0),
        native_time=native,
        producer_time=producer,
        worker_busy=worker_busy,
        critical_worker_time=critical,
        queue_wait_time=queue_wait,
        merge_time=merge_time,
        rebalance_time=rebalance_time,
        makespan=makespan,
    )


@dataclass
class SpeedupValidation:
    """Measured multi-core speedup checked against the model's prediction.

    The ``processes`` execution mode turns the cost model's *estimated*
    Figure 5/6 speedups into wall-clock measurements; this record pairs the
    two so benchmarks can assert the model stays honest where hardware
    permits measuring.
    """

    workers: int
    measured_speedup: float
    estimated_speedup: float
    relative_error: float
    tolerance: float

    @property
    def within_tolerance(self) -> bool:
        return self.relative_error <= self.tolerance


def validate_speedup(
    info_1: ParallelRunInfo,
    info_n: ParallelRunInfo,
    n_accesses: int,
    store_entries: int,
    measured_seconds_1: float,
    measured_seconds_n: float,
    params: CostParams | None = None,
    queue_depth: int = 32,
    tolerance: float = 0.5,
) -> SpeedupValidation:
    """Compare a measured 1-vs-N-worker speedup with the model's makespans.

    ``info_1``/``info_n`` are the pipeline statistics of the two runs (same
    trace, 1 and N workers); the estimated speedup is the ratio of the
    replayed virtual-time makespans, the measured one the ratio of wall
    clocks.  ``tolerance`` is deliberately loose (default 50% relative):
    the model predicts trend, not microarchitecture.
    """
    est_1 = estimate_parallel(
        info_1, n_accesses, store_entries, params=params, queue_depth=queue_depth
    )
    est_n = estimate_parallel(
        info_n, n_accesses, store_entries, params=params, queue_depth=queue_depth
    )
    estimated = est_1.makespan / max(est_n.makespan, 1e-12)
    measured = measured_seconds_1 / max(measured_seconds_n, 1e-12)
    rel_err = abs(measured - estimated) / max(estimated, 1e-12)
    return SpeedupValidation(
        workers=max(info_n.n_workers, 1),
        measured_speedup=measured,
        estimated_speedup=estimated,
        relative_error=rel_err,
        tolerance=tolerance,
    )
