"""Result rendering: ASCII tables, CSV export, bar charts for the benches."""

from repro.report.tables import ascii_table, bar_chart, csv_lines, fmt

__all__ = ["ascii_table", "bar_chart", "csv_lines", "fmt"]
