"""Plain-text table and chart rendering for the experiment harness.

The benchmark scripts regenerate the paper's tables and figures as text:
tables as aligned ASCII (plus CSV for downstream plotting), figures as
horizontal bar charts — adequate to read off who wins and by what factor.
"""

from __future__ import annotations

from typing import Any, Sequence


def fmt(value: Any) -> str:
    """Uniform cell formatting: floats get sensible precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out) + "\n"


def csv_lines(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """CSV rendering (no quoting needed for our numeric/identifier cells)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(fmt(c).replace(",", "") for c in row))
    return "\n".join(lines) + "\n"


def bar_chart(
    items: Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, scaled to the maximum value."""
    out = []
    if title:
        out.append(title)
    if not items:
        return (title + "\n(no data)\n") if title else "(no data)\n"
    peak = max(v for _, v in items) or 1.0
    label_w = max(len(name) for name, _ in items)
    for name, v in items:
        bar = "#" * max(1, int(width * v / peak)) if v > 0 else ""
        out.append(f"{name.ljust(label_w)} | {bar} {fmt(float(v))}{unit}")
    return "\n".join(out) + "\n"
