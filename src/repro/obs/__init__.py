"""repro.obs — the profiler's telemetry subsystem.

A first-class measurement plane for the whole pipeline, kept free of
profiler imports so every layer (queues, signatures, engines, CLI) can
depend on it without cycles:

* :class:`MetricsRegistry` + :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — the instrument registry (``metrics``);
* ``registry.span(name)`` — phase timing as a context manager;
* :class:`Sampler` — periodic gauge sampling into time-series events;
* sinks — :class:`NullSink` (default, zero overhead), :class:`MemorySink`,
  :class:`JsonlSink`, :class:`TeeSink`;
* :func:`prometheus_text` / :func:`parse_prometheus` — text exposition;
* :class:`RunReport` — the structured per-run JSON report.

Hot-path contract: plain counters are always live (an ``inc()`` is one
integer add), while *event* construction is guarded by ``sink.enabled`` so
a run without a configured sink does no extra allocation.
"""

from repro.obs.export import parse_prometheus, prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    format_name,
)
from repro.obs.report import RunReport
from repro.obs.sampler import Sampler
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "RunReport",
    "Sampler",
    "Sink",
    "SpanRecord",
    "TeeSink",
    "format_name",
    "parse_prometheus",
    "prometheus_text",
    "read_jsonl",
]
