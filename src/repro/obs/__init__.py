"""repro.obs — the profiler's telemetry subsystem.

A first-class measurement plane for the whole pipeline, kept free of
profiler imports so every layer (queues, signatures, engines, CLI) can
depend on it without cycles:

* :class:`MetricsRegistry` + :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — the instrument registry (``metrics``);
* ``registry.span(name)`` — phase timing as a context manager;
* :class:`Sampler` — periodic gauge sampling into time-series events;
* sinks — :class:`NullSink` (default, zero overhead), :class:`MemorySink`,
  :class:`JsonlSink`, :class:`TeeSink`;
* :class:`Tracer` / :class:`NullTracer` — the execution-timeline plane
  (``tracing``), exportable as Chrome ``trace_event`` JSON
  (``chrometrace``);
* :class:`ProvenanceCollector` — per-dependence attribution records
  (``provenance``), including the ``suspect_fp`` collision flag;
* :func:`prometheus_text` / :func:`parse_prometheus` — text exposition;
* :class:`RunReport` — the structured per-run JSON report;
* :class:`BenchRecorder` / :func:`compare` — structured benchmark records
  (``BENCH_<suite>.json``) and the noise-aware regression gate behind
  ``ddprof bench`` (``bench``), sharing one environment fingerprint with
  the run report (``environment``).

Hot-path contract: plain counters are always live (an ``inc()`` is one
integer add), while *event* construction is guarded by ``sink.enabled``
and timeline recording by ``tracer.enabled``, so a run without a
configured sink or tracer does no extra allocation.
"""

from repro.obs.bench import (
    BenchComparison,
    BenchRecorder,
    BenchSession,
    MetricComparison,
    MetricRecord,
    TimedSamples,
    classify_delta,
    compare,
    load_bench,
    repeat_timed,
)
from repro.obs.chrometrace import (
    chrome_trace_dict,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.environment import environment_fingerprint, git_sha, peak_rss_bytes
from repro.obs.export import (
    parse_prometheus,
    prometheus_text,
    sanitize_label_name,
)
from repro.obs.heatmap import (
    HEAT_BOUNDS,
    AddressHeatmap,
    bucket_of,
    bucket_range,
    heatmap_dict,
    heatmap_summary,
)
from repro.obs.httpd import TelemetryHTTPServer, healthz_dict
from repro.obs.ledger import (
    RunLedger,
    bundle_summary,
    default_ledger_dir,
    dependence_digest,
    dependence_edges,
    gc_ledger,
    list_runs,
    load_bundle,
    resolve_bundle,
    validate_run_id,
)
from repro.obs.log import NULL_LOG, NullLogger, StructLogger, new_run_id
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    format_name,
)
from repro.obs.provenance import (
    ProvenanceCollector,
    ProvenanceRecord,
    oracle_cross_check,
)
from repro.obs.report import (
    HEARTBEAT_STATES,
    RunReport,
    liveness_summary,
    memory_section,
)
from repro.obs.rundiff import (
    MetricDelta,
    RunDiff,
    VerdictFlip,
    diff_bundles,
)
from repro.obs.sampler import Sampler, deadline_loop
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
    read_jsonl,
)
from repro.obs.streamer import TelemetryStreamer, replay_stream, state_delta
from repro.obs.top import render_top, run_top
from repro.obs.tracing import (
    MAIN_TRACK,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    worker_track,
)

__all__ = [
    "AddressHeatmap",
    "BenchComparison",
    "BenchRecorder",
    "BenchSession",
    "Counter",
    "Gauge",
    "HEARTBEAT_STATES",
    "HEAT_BOUNDS",
    "Histogram",
    "JsonlSink",
    "MAIN_TRACK",
    "MemorySink",
    "MetricComparison",
    "MetricDelta",
    "MetricRecord",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_TRACER",
    "NullLogger",
    "NullSink",
    "NullTracer",
    "ProvenanceCollector",
    "ProvenanceRecord",
    "RunDiff",
    "RunLedger",
    "RunReport",
    "Sampler",
    "Sink",
    "SpanRecord",
    "StructLogger",
    "TeeSink",
    "TelemetryHTTPServer",
    "TelemetryStreamer",
    "TimedSamples",
    "TraceEvent",
    "Tracer",
    "VerdictFlip",
    "bucket_of",
    "bucket_range",
    "bundle_summary",
    "chrome_trace_dict",
    "classify_delta",
    "compare",
    "deadline_loop",
    "default_ledger_dir",
    "dependence_digest",
    "dependence_edges",
    "diff_bundles",
    "environment_fingerprint",
    "format_name",
    "gc_ledger",
    "git_sha",
    "healthz_dict",
    "heatmap_dict",
    "heatmap_summary",
    "list_runs",
    "liveness_summary",
    "load_bench",
    "load_bundle",
    "memory_section",
    "new_run_id",
    "oracle_cross_check",
    "parse_prometheus",
    "peak_rss_bytes",
    "prometheus_text",
    "read_jsonl",
    "render_top",
    "repeat_timed",
    "replay_stream",
    "resolve_bundle",
    "run_top",
    "sanitize_label_name",
    "state_delta",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_run_id",
    "worker_track",
    "write_chrome_trace",
]
