"""Live metrics streaming — delta snapshots of a registry as JSONL.

The post-hoc planes (``RunReport``, the final ``snapshot`` event) only
exist once a run finishes; the :class:`TelemetryStreamer` makes the same
registry observable *while it runs*.  A daemon thread wakes on a
drift-free deadline grid (:func:`~repro.obs.sampler.deadline_loop`),
freezes the registry with :meth:`~repro.obs.metrics.MetricsRegistry.state`,
and emits only what changed since the previous tick as one schema-versioned
JSONL record.  Because deltas are expressed in the exact shape
:meth:`~repro.obs.metrics.MetricsRegistry.merge_state` consumes — counters
as increments, gauges as last values, histograms as bucket-count deltas,
spans as the newly appended records — a consumer reconstructs the live
registry at any point by folding records in order; :func:`replay_stream`
does exactly that and is the round-trip test's oracle.

Stream layout (``ddprof.telemetry-stream/1``)::

    {"type": "header", "schema": ..., "run_id": ..., "interval_s": ..., "ts": ...}
    {"type": "delta", "seq": 1, "run_id": ..., "ts": ...,
     "counters": [[name, [[k, v], ...], increment], ...],
     "gauges": [...], "histograms": [...], "spans": [...]}
    ...
    {"type": "final", "seq": N, ...full display snapshot..., "deltas": N-?}

Every record carries the run's ``run_id``, so a live scraper tailing the
file can join it against the metrics event log and the structured log
stream.  Ticks on which nothing changed emit nothing — an idle run costs
one ``state()`` walk per interval and zero I/O.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import deadline_loop
from repro.obs.sinks import JsonlSink, Sink

SCHEMA = "ddprof.telemetry-stream/1"

#: Default emission cadence (seconds) — coarse enough to stay far off the
#: hot path, fine enough that a dashboard feels live.
DEFAULT_INTERVAL_S = 0.25


def _key(name: str, labels: Any) -> tuple[str, tuple]:
    return (name, tuple(tuple(kv) for kv in labels))


def state_delta(
    prev: dict[str, Any] | None, cur: dict[str, Any]
) -> dict[str, Any]:
    """What changed between two :meth:`MetricsRegistry.state` dumps.

    Returns a ``state``-shaped dict (mergeable via ``merge_state``):
    counters carry increments, gauges their current values (merge
    overwrites), histograms element-wise bucket-count deltas, and spans the
    newly appended tail.  Empty sections are empty lists, so ``is_empty_delta``
    can cheaply decide whether a tick needs a record at all.
    """
    if prev is None:
        prev = {"counters": [], "gauges": [], "histograms": [], "spans": []}
    pc = {_key(n, l): v for n, l, v in prev["counters"]}
    # A key absent from prev is emitted even at value 0: instrument
    # *creation* is state too, or replay would drop zero-valued counters.
    counters = [
        (n, l, v - pc.get(_key(n, l), 0))
        for n, l, v in cur["counters"]
        if _key(n, l) not in pc or v != pc[_key(n, l)]
    ]
    pg = {_key(n, l): v for n, l, v in prev["gauges"]}
    gauges = [
        (n, l, v)
        for n, l, v in cur["gauges"]
        if _key(n, l) not in pg or v != pg[_key(n, l)]
    ]
    ph = {
        _key(n, l): (counts, total, count)
        for n, l, _, counts, total, count in prev["histograms"]
    }
    histograms = []
    for n, l, buckets, counts, total, count in cur["histograms"]:
        is_new = _key(n, l) not in ph
        old_counts, old_total, old_count = ph.get(
            _key(n, l), ([0] * len(counts), 0.0, 0)
        )
        if is_new or count != old_count or total != old_total:
            histograms.append(
                (
                    n,
                    l,
                    buckets,
                    [c - o for c, o in zip(counts, old_counts)],
                    total - old_total,
                    count - old_count,
                )
            )
    spans = cur["spans"][len(prev["spans"]):]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": spans,
    }


def is_empty_delta(delta: dict[str, Any]) -> bool:
    return not any(
        delta[k] for k in ("counters", "gauges", "histograms", "spans")
    )


class TelemetryStreamer:
    """Streams registry deltas to a JSONL sink on a fixed cadence.

    Pass a path (the streamer owns and closes a :class:`JsonlSink` with
    per-record flushing, so tailing the file always sees whole lines) or
    any :class:`Sink` (caller keeps ownership).  Driving is either
    threaded (:meth:`start` / :meth:`stop`) or manual (:meth:`tick` from a
    producer loop, mirroring the :class:`~repro.obs.sampler.Sampler`).

    :meth:`stop` takes one final delta tick and appends a ``final`` record
    with the full display snapshot, so a consumer that only reads the last
    line still gets the end-of-run totals.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sink: Sink | str | Path,
        interval_s: float = DEFAULT_INTERVAL_S,
        run_id: str | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.registry = registry
        if isinstance(sink, Sink):
            self.sink = sink
            self._own_sink = False
        else:
            self.sink = JsonlSink(sink, flush_every=1)
            self._own_sink = True
        self.interval_s = interval_s
        self.run_id = run_id if run_id is not None else registry.run_id
        self.seq = 0
        self.n_records = 0
        self.ticks_missed = 0
        self._prev: dict[str, Any] | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._closed = False

    # -- record emission ----------------------------------------------------
    def _emit(self, record: dict[str, Any]) -> None:
        record["ts"] = round(time.time(), 6)
        if self.run_id is not None:
            record["run_id"] = self.run_id
        self.sink.emit(record)
        self.n_records += 1

    def tick(self) -> bool:
        """Emit one delta record if anything changed; True when emitted.

        Serialized by a lock: the final forced tick from :meth:`stop` and a
        late grid tick from the thread cannot interleave their state reads.
        """
        with self._lock:
            if self._closed:
                return False
            cur = self.registry.state()
            delta = state_delta(self._prev, cur)
            self._prev = cur
            if is_empty_delta(delta):
                return False
            self.seq += 1
            self._emit({"type": "delta", "seq": self.seq, **delta})
            return True

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Write the header record and start the streaming thread."""
        if self._thread is not None:
            return
        self._emit(
            {"type": "header", "schema": SCHEMA, "interval_s": self.interval_s}
        )
        self._stop.clear()

        def on_missed(n: int) -> None:
            self.ticks_missed += n

        self._thread = threading.Thread(
            target=deadline_loop,
            args=(self.tick, self.interval_s, self._stop.wait),
            kwargs={"on_missed": on_missed},
            name="obs-streamer",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Final delta + ``final`` full-snapshot record; close an owned sink.

        Idempotent, and safe to call without :meth:`start` (manual driving):
        the trailing records are written exactly once.
        """
        if self._closed:
            return
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5)
            self._thread = None
        self.tick()  # flush whatever changed since the last grid point
        with self._lock:
            self._closed = True
            self.seq += 1
            self._emit(
                {"type": "final", "seq": self.seq, **self.registry.snapshot()}
            )
            self.sink.flush()
            if self._own_sink:
                self.sink.close()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "TelemetryStreamer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def replay_stream(path: str | Path) -> tuple[MetricsRegistry, dict[str, Any]]:
    """Reconstruct a registry from a streamed JSONL file.

    Folds every ``delta`` record into a fresh registry via ``merge_state``
    and returns ``(registry, info)`` where ``info`` carries the header
    fields, the record counts, and the embedded ``final`` snapshot (if the
    stream was closed cleanly).  The round-trip contract —
    ``replay_stream(p)[0].snapshot() == final snapshot`` — is what makes
    the stream a faithful live view rather than a lossy log.
    """
    from repro.obs.sinks import read_jsonl

    reg = MetricsRegistry()
    info: dict[str, Any] = {
        "header": None,
        "final": None,
        "n_deltas": 0,
        "run_ids": set(),
    }
    for rec in read_jsonl(path):
        if "run_id" in rec:
            info["run_ids"].add(rec["run_id"])
        kind = rec.get("type")
        if kind == "header":
            info["header"] = rec
        elif kind == "delta":
            info["n_deltas"] += 1
            reg.merge_state(
                {
                    "counters": rec["counters"],
                    "gauges": rec["gauges"],
                    "histograms": rec["histograms"],
                    "spans": rec["spans"],
                }
            )
        elif kind == "final":
            info["final"] = rec
    return reg, info
