"""Telemetry sinks — where emitted events go.

A sink receives *events*: flat dicts with a ``"type"`` key (``span``,
``sample``, ``rebalance``, ...) plus a ``"ts"`` wall-clock stamp added by the
registry.  Sinks are deliberately dumb — no buffering policy, no schema —
so the hot path pays only a dict construction and one call.

``NullSink`` is the default everywhere.  Its ``enabled`` flag is ``False``,
which lets instrumented code skip even *building* the event dict::

    if registry.sink.enabled:
        registry.emit({"type": "sample", ...})

so a profiler run with no sink configured costs nothing beyond the plain
integer counters it would keep anyway.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from repro.common.errors import ObsError


class Sink:
    """Base sink: interface + the ``enabled`` fast-path flag."""

    enabled: bool = True

    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to durable storage (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullSink(Sink):
    """Discards everything; ``enabled=False`` disables event construction."""

    enabled = False

    def emit(self, event: dict[str, Any]) -> None:
        pass


#: Shared default instance — sinkless registries all point here.
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Keeps events in a list; the unit-test and introspection sink."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def of_type(self, kind: str) -> list[dict[str, Any]]:
        return [e for e in self.events if e.get("type") == kind]


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (the event-log format).

    Field order is stable (sorted keys) so logs diff cleanly across runs.
    The file opens lazily on the first event and is created empty on
    ``close()`` if nothing was ever emitted — callers can rely on the file
    existing after a run.

    ``close()`` is idempotent; emitting after close raises
    :class:`~repro.common.errors.ObsError` instead of a bare I/O error.
    ``flush_every=N`` flushes to disk every ``N`` events so long runs do
    not sit on an unbounded OS buffer (0/None = flush only on demand).
    """

    def __init__(self, path: str | Path, flush_every: int | None = None) -> None:
        if flush_every is not None and flush_every < 0:
            raise ValueError("flush_every must be non-negative")
        self.path = Path(path)
        self.flush_every = flush_every or 0
        self._fh: IO[str] | None = None
        self._closed = False
        self.n_events = 0

    def _file(self) -> IO[str]:
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
        return self._fh

    def emit(self, event: dict[str, Any]) -> None:
        if self._closed:
            raise ObsError(f"emit() on closed JsonlSink({self.path})")
        self._file().write(
            json.dumps(event, sort_keys=True, separators=(",", ":"), default=str)
            + "\n"
        )
        self.n_events += 1
        if self.flush_every and self.n_events % self.flush_every == 0:
            self._fh.flush()  # type: ignore[union-attr]

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is None:
            # Guarantee the file exists even for an event-free run.
            self.path.touch()
        else:
            fh, self._fh = self._fh, None
            fh.close()


class TeeSink(Sink):
    """Fans every event out to several sinks (e.g. memory + JSONL)."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = [s for s in sinks if s.enabled]
        self.enabled = bool(self.sinks)
        self._closed = False

    def emit(self, event: dict[str, Any]) -> None:
        if self._closed:
            raise ObsError("emit() on closed TeeSink")
        for s in self.sinks:
            s.emit(event)

    def flush(self) -> None:
        for s in self.sinks:
            s.flush()

    def close(self) -> None:
        """Close every member even if one raises (first error re-raised)."""
        if self._closed:
            return
        self._closed = True
        first: Exception | None = None
        for s in self.sinks:
            try:
                s.close()
            except Exception as exc:  # noqa: BLE001 - collect, close the rest
                if first is None:
                    first = exc
        if first is not None:
            raise first


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL event log back into dicts (round-trip helper)."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out
