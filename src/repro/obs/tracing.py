"""Execution-timeline tracing — *when* did each pipeline actor do what.

The metrics registry answers "how much"; the tracer answers "when and in
what order".  It records pipeline lifecycle events (chunks pushed by the
producer, chunks processed per worker, queue-stall intervals, load-balancing
redistributions, merge phases) on a set of *tracks* — track 0 is the main
thread, track ``w + 1`` is worker ``w`` — with timestamps from one shared
``perf_counter`` epoch, so the whole run can be laid out as a timeline and
exported to Chrome ``trace_event`` JSON (:mod:`repro.obs.chrometrace`).

Hot-path contract, mirroring the sink design: the default
:class:`NullTracer` has ``enabled = False`` and every instrumented call
site is guarded by ``tracer.enabled``, so an untraced run executes the
identical code path and *never* calls a record method.  ``NullTracer``
counts any call it does receive (``record_calls``) — the overhead benchmark
asserts that counter stays at zero.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Track id of the producer / main thread.
MAIN_TRACK = 0

#: Soft cap on recorded events; beyond it events are counted, not stored,
#: so a runaway trace cannot exhaust memory.
DEFAULT_MAX_EVENTS = 1_000_000


def worker_track(worker: int) -> int:
    """Track id of worker ``worker`` (main thread owns track 0)."""
    return worker + 1


class TraceEvent:
    """One timeline event.

    ``ts`` is seconds since the tracer's epoch.  ``dur`` is ``None`` for
    instant events and the duration in seconds for complete (slice) events.
    """

    __slots__ = ("name", "track", "ts", "dur", "args")

    def __init__(
        self,
        name: str,
        track: int,
        ts: float,
        dur: float | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.track = track
        self.ts = ts
        self.dur = dur
        self.args = args or {}

    @property
    def is_complete(self) -> bool:
        return self.dur is not None

    @property
    def end(self) -> float:
        return self.ts + (self.dur or 0.0)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "track": self.track, "ts": self.ts}
        if self.dur is not None:
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:
        kind = f"dur={self.dur:.6f}" if self.dur is not None else "instant"
        return f"TraceEvent({self.name!r}, track={self.track}, ts={self.ts:.6f}, {kind})"


class NullTracer:
    """Disabled tracer: ``enabled=False`` lets call sites skip recording.

    Record methods are still safe to call; each call bumps
    ``record_calls`` so tests can prove the guarded hot path never
    reaches them.
    """

    enabled = False
    #: Empty, immutable event view so consumers can iterate unconditionally.
    events: tuple[TraceEvent, ...] = ()
    track_names: dict[int, str] = {}
    n_dropped = 0
    run_id: str | None = None

    def __init__(self) -> None:
        self.record_calls = 0

    def set_track(self, track: int, name: str) -> None:
        self.record_calls += 1

    def instant(self, name: str, track: int = MAIN_TRACK, **args: Any) -> None:
        self.record_calls += 1

    def complete(
        self,
        name: str,
        track: int,
        start: float,
        end: float | None = None,
        **args: Any,
    ) -> None:
        self.record_calls += 1

    def now(self) -> float:
        return time.perf_counter()

    @contextmanager
    def slice(self, name: str, track: int = MAIN_TRACK, **args: Any) -> Iterator[None]:
        self.record_calls += 1
        yield

    def summary(self) -> dict[str, Any]:
        return {}


#: Shared default instance — registries without a tracer all point here.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: one shared clock epoch, one event list.

    All record methods take *absolute* ``time.perf_counter()`` values (or
    stamp "now" themselves) and store timestamps relative to the tracer's
    construction epoch, so events from different threads land on one
    comparable timeline.  Appending to a list is atomic under the GIL,
    which is all the thread-safety the pipeline's workers need.
    """

    enabled = True

    def __init__(
        self, max_events: int = DEFAULT_MAX_EVENTS, run_id: str | None = None
    ) -> None:
        self.epoch = time.perf_counter()
        self.max_events = max_events
        #: Correlation id of the run this timeline belongs to (lands in the
        #: Chrome trace export's ``otherData`` so a trace file can be matched
        #: to its metrics/log streams).
        self.run_id = run_id
        self.events: list[TraceEvent] = []
        self.track_names: dict[int, str] = {MAIN_TRACK: "main"}
        self.n_dropped = 0

    # -- recording ---------------------------------------------------------
    def now(self) -> float:
        """Absolute clock value; pass back into :meth:`complete`."""
        return time.perf_counter()

    def set_track(self, track: int, name: str) -> None:
        self.track_names[track] = name

    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.n_dropped += 1
            return
        self.events.append(event)

    def instant(self, name: str, track: int = MAIN_TRACK, **args: Any) -> None:
        """Record a zero-duration event stamped now."""
        self._record(
            TraceEvent(name, track, time.perf_counter() - self.epoch, None, args)
        )

    def complete(
        self,
        name: str,
        track: int,
        start: float,
        end: float | None = None,
        **args: Any,
    ) -> None:
        """Record a slice from absolute ``start`` to ``end`` (default: now)."""
        if end is None:
            end = time.perf_counter()
        self._record(
            TraceEvent(name, track, start - self.epoch, max(0.0, end - start), args)
        )

    @contextmanager
    def slice(self, name: str, track: int = MAIN_TRACK, **args: Any) -> Iterator[None]:
        """Context manager recording one complete event around its body."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.complete(name, track, t0, **args)

    # -- cross-process transfer --------------------------------------------
    def adopt(
        self,
        events: list[TraceEvent],
        epoch: float,
        track_names: dict[int, str] | None = None,
    ) -> None:
        """Fold events recorded by another tracer into this timeline.

        ``epoch`` is the donor tracer's construction epoch.  On Linux
        ``time.perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide,
        so re-basing by the epoch difference puts a forked child's events on
        the parent's timeline exactly.  The ``max_events`` cap still
        applies.
        """
        shift = epoch - self.epoch
        for e in events:
            self._record(TraceEvent(e.name, e.track, e.ts + shift, e.dur, e.args))
        if track_names:
            for track, name in track_names.items():
                self.track_names.setdefault(track, name)

    # -- derived views -----------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self.events)

    def events_on(self, track: int) -> list[TraceEvent]:
        return [e for e in self.events if e.track == track]

    def of_name(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def wall_seconds(self) -> float:
        """Span from the earliest event start to the latest event end."""
        if not self.events:
            return 0.0
        start = min(e.ts for e in self.events)
        end = max(e.end for e in self.events)
        return max(0.0, end - start)

    def summary(self) -> dict[str, Any]:
        """Per-track busy/stall/idle accounting for the run report.

        ``busy`` sums complete-event durations except stall intervals;
        ``stall`` sums events whose name ends in ``_stall``; ``idle`` is
        whatever remains of the wall-clock window.  Fractions are of the
        whole-trace wall time, so tracks are directly comparable.
        """
        wall = self.wall_seconds()
        tracks: dict[str, Any] = {}
        for track in sorted(set(e.track for e in self.events) | set(self.track_names)):
            evs = self.events_on(track)
            stall = sum(
                e.dur for e in evs if e.dur is not None and e.name.endswith("_stall")
            )
            busy = sum(
                e.dur
                for e in evs
                if e.dur is not None and not e.name.endswith("_stall")
            )
            busy = min(busy, wall)
            idle = max(0.0, wall - busy - stall)
            name = self.track_names.get(track, f"track {track}")
            tracks[name] = {
                "events": len(evs),
                "busy_seconds": busy,
                "stall_seconds": stall,
                "busy_frac": busy / wall if wall else 0.0,
                "stall_frac": stall / wall if wall else 0.0,
                "idle_frac": idle / wall if wall else 0.0,
            }
        return {
            "wall_seconds": wall,
            "n_events": len(self.events),
            "n_dropped": self.n_dropped,
            "tracks": tracks,
        }
