"""``ddprof top`` — a live terminal view of a running profile.

Polls the in-process HTTP exporter (:mod:`repro.obs.httpd`) — ``/snapshot``
for the instrument values and ``/heatmap`` for the memory plane — and
renders one self-contained frame per interval: per-worker throughput, queue
depth, signature fill, heartbeat verdicts, and the hottest address buckets
as a bar chart.  Pure functions throughout: :func:`render_top` maps the two
JSON documents to a string, so tests exercise the rendering without a
socket, and the CLI loop is a trivial fetch/clear/print cycle.

Works against any exporter the ``--serve`` flag of a pipeline run started;
nothing here imports the profiler itself.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.error
import urllib.request
from typing import Any

#: ``name{k="v",...}`` display-name form produced by the registry snapshot.
_NAME_RE = re.compile(r'^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$')
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')

_HEARTBEAT_STATES = ("live", "stalled", "dead")

#: Eight-step unicode bar used for the heat chart.
_BAR = " ▏▎▍▌▋▊▉█"


def parse_metric_name(full: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot display name into ``(name, labels)``."""
    m = _NAME_RE.match(full)
    if m is None:  # pragma: no cover - the registry never emits this
        return full, {}
    labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
    return m.group("name"), labels


def _family(values: dict[str, Any], name: str) -> dict[tuple[str, ...], float]:
    """All series of one metric family, keyed by sorted label values."""
    out: dict[tuple[str, ...], float] = {}
    for full, v in values.items():
        n, labels = parse_metric_name(full)
        if n == name:
            out[tuple(labels[k] for k in sorted(labels))] = v
    return out


def _by_worker(values: dict[str, Any], name: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for full, v in values.items():
        n, labels = parse_metric_name(full)
        if n == name and "worker" in labels:
            out[labels["worker"]] = v
    return out


def fetch(url: str, timeout: float = 2.0) -> dict[str, Any]:
    """GET one JSON document from the exporter."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return " " * width
    frac = min(value / peak, 1.0) * width
    full, rem = int(frac), frac - int(frac)
    tail = _BAR[int(rem * (len(_BAR) - 1))] if full < width else ""
    return (("█" * full) + tail).ljust(width)


def _fmt_count(v: float) -> str:
    v = int(v)
    if v >= 10_000_000:
        return f"{v / 1e6:.0f}M"
    if v >= 10_000:
        return f"{v / 1e3:.0f}k"
    return str(v)


def _fmt_range(lo: int, hi: int | None) -> str:
    def one(x: int) -> str:
        if x >= 1 << 30:
            return f"2^{x.bit_length() - 1}"
        return str(x)

    return f"[{one(lo)}, {one(hi) if hi is not None else 'inf'}]"


def render_top(
    snapshot: dict[str, Any], heatmap: dict[str, Any] | None = None
) -> str:
    """Render one frame from ``/snapshot`` (+ optional ``/heatmap``) JSON."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    lines: list[str] = []

    run_id = snapshot.get("run_id") or "?"
    chunks = sum(_family(counters, "pipeline.chunks").values())
    lines.append(f"ddprof top — run {run_id}  ({int(chunks)} chunks pushed)")

    accesses = _by_worker(counters, "worker.accesses")
    wchunks = _by_worker(counters, "worker.chunks")
    occupancy = _by_worker(gauges, "queue.occupancy")
    hb_state = _by_worker(gauges, "worker.heartbeat.state")
    rss = _by_worker(gauges, "process.peak_rss_bytes")
    fill: dict[str, float] = {}
    for full, v in gauges.items():
        n, labels = parse_metric_name(full)
        if n == "sigmem.fill_ratio" and "worker" in labels:
            w = labels["worker"]
            fill[w] = max(fill.get(w, 0.0), v)

    heat_workers = (heatmap or {}).get("workers", {})
    workers = sorted(
        set(accesses) | set(wchunks) | set(hb_state) | set(heat_workers),
        key=lambda w: (len(w), w),
    )
    if workers:
        lines.append(
            "  worker   accesses   chunks  queue   fill    state      "
            "heat r/w"
        )
        for w in workers:
            code = int(hb_state.get(w, -1))
            state = (
                _HEARTBEAT_STATES[code]
                if 0 <= code < len(_HEARTBEAT_STATES)
                else "-"
            )
            wh = heat_workers.get(w) or {}
            hr = sum(wh.get("reads") or [])
            hw = sum(wh.get("writes") or [])
            heat = f"{_fmt_count(hr)}/{_fmt_count(hw)}" if wh else "-"
            lines.append(
                f"  {w:>6s} {_fmt_count(accesses.get(w, 0)):>10s} "
                f"{_fmt_count(wchunks.get(w, 0)):>8s} "
                f"{int(occupancy.get(w, 0)):>6d} "
                f"{fill.get(w, 0.0) * 100:5.1f}%  {state:<9s}  {heat}"
            )

    stalls_push = sum(_family(counters, "queue.push_stalls").values())
    stalls_pop = sum(_family(counters, "queue.pop_stalls").values())
    backpressure = sum(
        _family(counters, "pipeline.backpressure_stalls").values()
    )
    rounds = sum(_family(counters, "rebalance.rounds").values())
    moves = sum(_family(counters, "rebalance.moves").values())
    bank_moves = sum(_family(counters, "rebalance.bank_moves").values())
    evictions = sum(_family(counters, "sigmem.evictions").values())
    moved = f"{int(moves)} moved"
    if bank_moves:
        moved += f", {int(bank_moves)} banks"
    lines.append(
        f"  stalls push={int(stalls_push)} pop={int(stalls_pop)}"
        + (f" backpressure={int(backpressure)}" if backpressure else "")
        + f"  rebalances {int(rounds)} ({moved})  "
        f"evictions {int(evictions)}"
    )
    if rss:
        parts = ", ".join(
            f"w{w}={v / (1 << 20):.0f}MiB"
            for w, v in sorted(rss.items(), key=lambda kv: (len(kv[0]), kv[0]))
        )
        lines.append(f"  peak rss: {parts}")

    cov_gauge = _family(gauges, "producer.fastpath_coverage")
    fast = sum(_family(counters, "producer.events_fastpath").values())
    interp = sum(_family(counters, "producer.events_interpreted").values())
    if cov_gauge or fast or interp:
        coverage = (
            next(iter(cov_gauge.values()))
            if cov_gauge
            else (fast / (fast + interp) if fast + interp else 0.0)
        )
        lines.append(
            f"  producer: fastpath coverage {coverage * 100:.1f}% "
            f"({_fmt_count(fast)} fast / {_fmt_count(interp)} interpreted)"
        )

    banks = (heatmap or {}).get("banks")
    if banks and banks.get("total"):
        total = banks["total"]
        occupied = banks.get("occupied_banks", 0)
        top_banks = sorted(
            ((occ, i) for i, occ in enumerate(total) if occ),
            reverse=True,
        )[:6]
        hot = " ".join(f"b{i}={_fmt_count(occ)}" for occ, i in top_banks)
        lines.append(
            f"  banks: {occupied}/{banks['n_banks']} occupied, "
            f"skew {banks.get('skew', 0.0):.2f} — hottest: {hot}"
        )

    if heatmap and heatmap.get("hottest"):
        lines.append(
            f"  heat: {_fmt_count(heatmap['total_reads'])}r/"
            f"{_fmt_count(heatmap['total_writes'])}w, "
            f"{_fmt_count(heatmap['total_conflicts'])} conflicts — "
            "hottest address buckets:"
        )
        hottest = heatmap["hottest"]
        peak = max(b["reads"] + b["writes"] for b in hottest)
        for b in hottest[:8]:
            total = b["reads"] + b["writes"]
            lines.append(
                f"    {_fmt_range(b['lo'], b['hi']):>16s} "
                f"{_bar(total, peak)} {_fmt_count(total):>8s}"
                + (f"  ({_fmt_count(b['conflicts'])} conf)" if b["conflicts"] else "")
            )
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval: float = 1.0,
    once: bool = False,
    out: Any = None,
) -> int:
    """The ``ddprof top`` loop: poll, clear, render, until interrupted."""
    out = out if out is not None else sys.stdout
    base = url.rstrip("/")
    while True:
        try:
            snapshot = fetch(base + "/snapshot")
            try:
                heatmap = fetch(base + "/heatmap")
            except (urllib.error.URLError, OSError, ValueError):
                heatmap = None
            frame = render_top(snapshot, heatmap)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if once:
                print(f"ddprof top: cannot reach {base}: {exc}", file=sys.stderr)
                return 1
            frame = f"ddprof top: waiting for {base} ({exc})\n"
        if once:
            out.write(frame)
            return 0
        out.write("\x1b[2J\x1b[H" + frame)
        out.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
