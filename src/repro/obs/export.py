"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

``prometheus_text`` renders the classic text format (``# TYPE`` headers,
``name{label="v"} value`` samples, cumulative ``_bucket``/``_sum``/
``_count`` histogram series); ``parse_prometheus`` reads it back into a
flat ``{sample_name: value}`` dict so tests (and scrapers without a real
Prometheus) can round-trip the export.

Metric names use dots internally (``queue.push_stalls``); the exporter
maps every non ``[a-zA-Z0-9_:]`` character to ``_`` per the Prometheus
naming rules, prefixed with ``ddprof_``.

Label *names* are validated too (``[a-zA-Z_][a-zA-Z0-9_]*``; values only
need escaping, names must match the grammar or the scrape fails).  The
``invalid_names`` policy picks between ``"sanitize"`` (map offending
characters to ``_``, prefix a leading digit — but refuse a sanitization
that collides with another label of the same metric, which would silently
merge two series) and ``"error"`` (raise
:class:`~repro.common.errors.ObsError` at export time, for callers that
prefer loud schema drift).
"""

from __future__ import annotations

import re
from typing import Any

from repro.common.errors import ObsError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, format_name

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")
# The label section may contain '}' and ',' inside quoted values, so it is
# matched as a sequence of non-quote/non-brace runs and full quoted strings
# (with backslash escapes) rather than a naive [^}]*.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?\s+(?P<value>[^\s]+)$'
)

PREFIX = "ddprof_"


def _prom_name(name: str) -> str:
    return PREFIX + _NAME_RE.sub("_", name)


def sanitize_label_name(name: str) -> str:
    """Coerce ``name`` into the Prometheus label grammar.

    Invalid characters become ``_``; a leading digit (or empty result) gets
    a ``_`` prefix.  Idempotent, so already-valid names pass through.
    """
    out = _LABEL_SANITIZE_RE.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _safe_labels(
    labels: tuple[tuple[str, str], ...], policy: str, where: str
) -> tuple[tuple[str, str], ...]:
    """Apply the ``invalid_names`` policy to one metric's label names."""
    if all(_LABEL_NAME_RE.match(k) for k, _ in labels):
        return labels
    if policy == "error":
        bad = [k for k, _ in labels if not _LABEL_NAME_RE.match(k)]
        raise ObsError(
            f"metric {where}: label name(s) {bad} are not valid Prometheus "
            "label names ([a-zA-Z_][a-zA-Z0-9_]*)"
        )
    out = tuple((sanitize_label_name(k), v) for k, v in labels)
    seen = [k for k, _ in out]
    if len(set(seen)) != len(seen):
        dupes = sorted({k for k in seen if seen.count(k) > 1})
        raise ObsError(
            f"metric {where}: sanitizing label names collides on {dupes} "
            "(two labels would merge into one series)"
        )
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-exposition spec:
    backslash, double-quote, and line-feed become ``\\\\``, ``\\"``,
    ``\\n``."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(v: float) -> str:
    if isinstance(v, int) or float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(
    registry: MetricsRegistry, invalid_names: str = "sanitize"
) -> str:
    """Render every instrument in the Prometheus text exposition format.

    ``invalid_names`` governs label names outside the Prometheus grammar:
    ``"sanitize"`` (default) rewrites them via :func:`sanitize_label_name`,
    ``"error"`` raises :class:`~repro.common.errors.ObsError`.  Either way
    a sanitization *collision* (two labels mapping to one name) always
    raises — that would silently merge distinct series.
    """
    if invalid_names not in ("sanitize", "error"):
        raise ValueError(
            f"invalid_names must be 'sanitize' or 'error', got {invalid_names!r}"
        )
    # Group by family so each # TYPE header appears once.
    families: dict[str, tuple[str, list[Any]]] = {}
    for m in registry:
        kind = (
            "counter"
            if isinstance(m, Counter)
            else "gauge" if isinstance(m, Gauge) else "histogram"
        )
        families.setdefault(m.name, (kind, []))[1].append(m)

    lines: list[str] = []
    for name in sorted(families):
        kind, members = families[name]
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} {kind}")
        for m in sorted(members, key=lambda m: m.labels):
            labels = _safe_labels(
                m.labels, invalid_names, format_name(m.name, m.labels)
            )
            if isinstance(m, Histogram):
                cum = 0
                for ub, c in zip(m.buckets, m.counts):
                    cum += c
                    le = 'le="%s"' % _fmt_value(ub)
                    lines.append(
                        f"{pname}_bucket{_labels_text(labels, le)} {cum}"
                    )
                cum += m.counts[-1]
                inf = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_labels_text(labels, inf)} {cum}"
                )
                lines.append(
                    f"{pname}_sum{_labels_text(labels)} {_fmt_value(m.sum)}"
                )
                lines.append(f"{pname}_count{_labels_text(labels)} {m.count}")
            else:
                lines.append(
                    f"{pname}{_labels_text(labels)} {_fmt_value(m.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text into ``{'name{labels}': value}`` (round-trip)."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels = m.group("labels")
        key = m.group("name") + (f"{{{labels}}}" if labels else "")
        out[key] = float(m.group("value"))
    return out
