"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

``prometheus_text`` renders the classic text format (``# TYPE`` headers,
``name{label="v"} value`` samples, cumulative ``_bucket``/``_sum``/
``_count`` histogram series); ``parse_prometheus`` reads it back into a
flat ``{sample_name: value}`` dict so tests (and scrapers without a real
Prometheus) can round-trip the export.

Metric names use dots internally (``queue.push_stalls``); the exporter
maps every non ``[a-zA-Z0-9_:]`` character to ``_`` per the Prometheus
naming rules, prefixed with ``ddprof_``.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
# The label section may contain '}' and ',' inside quoted values, so it is
# matched as a sequence of non-quote/non-brace runs and full quoted strings
# (with backslash escapes) rather than a naive [^}]*.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?\s+(?P<value>[^\s]+)$'
)

PREFIX = "ddprof_"


def _prom_name(name: str) -> str:
    return PREFIX + _NAME_RE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-exposition spec:
    backslash, double-quote, and line-feed become ``\\\\``, ``\\"``,
    ``\\n``."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(v: float) -> str:
    if isinstance(v, int) or float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    # Group by family so each # TYPE header appears once.
    families: dict[str, tuple[str, list[Any]]] = {}
    for m in registry:
        kind = (
            "counter"
            if isinstance(m, Counter)
            else "gauge" if isinstance(m, Gauge) else "histogram"
        )
        families.setdefault(m.name, (kind, []))[1].append(m)

    lines: list[str] = []
    for name in sorted(families):
        kind, members = families[name]
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} {kind}")
        for m in sorted(members, key=lambda m: m.labels):
            if isinstance(m, Histogram):
                cum = 0
                for ub, c in zip(m.buckets, m.counts):
                    cum += c
                    le = 'le="%s"' % _fmt_value(ub)
                    lines.append(
                        f"{pname}_bucket{_labels_text(m.labels, le)} {cum}"
                    )
                cum += m.counts[-1]
                inf = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_labels_text(m.labels, inf)} {cum}"
                )
                lines.append(
                    f"{pname}_sum{_labels_text(m.labels)} {_fmt_value(m.sum)}"
                )
                lines.append(f"{pname}_count{_labels_text(m.labels)} {m.count}")
            else:
                lines.append(
                    f"{pname}{_labels_text(m.labels)} {_fmt_value(m.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text into ``{'name{labels}': value}`` (round-trip)."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels = m.group("labels")
        key = m.group("name") + (f"{{{labels}}}" if labels else "")
        out[key] = float(m.group("value"))
    return out
