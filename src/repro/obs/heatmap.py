"""Address heatmaps — where in the address space does the profiler hurt?

The paper's §IV-A load balancer already proves the point that access *heat*
is concentrated: a handful of addresses soak up most of the traffic.  This
module makes that concentration observable.  An :class:`AddressHeatmap`
maintains bounded, log2-bucketed per-address-range histograms — reads,
writes, signature-conflict evictions, and end-of-run signature occupancy —
per worker, stored as ordinary registry :class:`~repro.obs.metrics.Histogram`
instruments.  Because the heat series are registry-native, everything the
metrics plane already does works unchanged: processes-mode workers merge
via :meth:`~repro.obs.metrics.MetricsRegistry.merge_state`, the live
telemetry stream carries bucket-count deltas, ``/metrics`` exports them as
Prometheus histograms, and the run report snapshots them.

Bucketing is fixed (not data-dependent) so merges can never hit a layout
mismatch: bucket ``0`` covers addresses ``[0, 1]``, bucket ``i`` covers
``(2^(i-1), 2^i]`` for ``i < 63``, and the final bucket is the ``> 2^62``
overflow — 64 buckets total, enough to span any 64-bit address space at
power-of-two granularity.  Bucket membership is computed with an integer
``searchsorted`` (never through float conversion), so an address lands in
the same bucket on every path, which is what makes the threads-vs-processes
differential test bit-for-bit.

The ``sum`` field of the heat histograms is deliberately left at zero:
summing addresses is meaningless, and a zero sum keeps cross-mode
comparisons exact (float accumulation order would otherwise leak into the
merged state).

Consumption surfaces: :func:`heatmap_summary` decodes the registry back
into one JSON document (``ddprof.heatmap/1``) for the run report's
``memory`` section, and :func:`heatmap_dict` wraps it for the ``/heatmap``
HTTP endpoint (always a valid document, even before any heat was recorded).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.obs.metrics import Histogram, MetricsRegistry

SCHEMA = "ddprof.heatmap/1"

#: Number of power-of-two upper bounds; +1 overflow bucket = 64 buckets.
N_BOUNDS = 63

#: Histogram bucket upper bounds: 2^0 .. 2^62.  Powers of two are exact in
#: float64, so the registry's float bucket layout is lossless.
HEAT_BOUNDS: tuple[float, ...] = tuple(float(1 << i) for i in range(N_BOUNDS))

#: The same bounds as int64, for exact integer bucketing via searchsorted.
_INT_BOUNDS = np.array([1 << i for i in range(N_BOUNDS)], dtype=np.int64)

#: Heat histogram families this module owns in the registry.
HEAT_FAMILIES = ("heat.reads", "heat.writes", "heat.conflicts", "heat.occupancy")

#: Bank-occupancy family (sharded signature memory): bucket *indices* are
#: bank numbers, not address bounds — counts[i] accumulates the live-entry
#: count of bank ``i`` at publish time.  Kept out of ``HEAT_FAMILIES``
#: because its bucket layout is ``n_banks``-dependent, not the fixed
#: 64-bucket address grid.
BANK_FAMILY = "heat.banks"


def bucket_of(addr: int) -> int:
    """Bucket index of one address (0..63); matches ``Histogram.observe``
    semantics (first bucket whose upper bound is >= the address)."""
    return int(np.searchsorted(_INT_BOUNDS, addr, side="left"))


def bucket_range(i: int) -> tuple[int, int | None]:
    """Inclusive integer address range ``(lo, hi)`` of bucket ``i``;
    ``hi=None`` for the overflow bucket."""
    if i <= 0:
        return (0, 1)
    if i >= N_BOUNDS:
        return ((1 << (N_BOUNDS - 1)) + 1, None)
    return ((1 << (i - 1)) + 1, 1 << i)


def _bulk_record(hist: Histogram, addrs: np.ndarray) -> None:
    """Fold a batch of addresses into ``hist`` bucket-wise.

    One ``searchsorted`` + one ``bincount`` per chunk, then a sparse add
    into the histogram's plain-int counts (so the registry state stays
    JSON-clean — no numpy scalars leak into ``state()``).
    """
    n = int(len(addrs))
    if n == 0:
        return
    idx = np.searchsorted(_INT_BOUNDS, addrs, side="left")
    binc = np.bincount(idx, minlength=N_BOUNDS + 1)
    counts = hist.counts
    for i in np.flatnonzero(binc).tolist():
        counts[i] += int(binc[i])
    hist.count += n  # sum stays 0.0 by design (see module docstring)


class AddressHeatmap:
    """Per-worker address-heat recorder over registry histograms.

    One instance per :class:`~repro.parallel.worker.Worker`.  The read and
    write series are fed from the worker's chunk loop
    (:meth:`record_batch_rows`), the conflict series from the array
    signature's eviction hook (:meth:`record_conflict` — wired so it fires
    on *exactly* the events the ``sigmem.evictions`` counter counts, which
    is what makes the bucket sums reconcile with the suspect-FP total), and
    the occupancy series once at publish time (:meth:`record_occupancy`).
    """

    def __init__(self, registry: MetricsRegistry, worker: int) -> None:
        self.registry = registry
        self.worker = worker
        self._reads = registry.histogram(
            "heat.reads", buckets=HEAT_BOUNDS, worker=worker
        )
        self._writes = registry.histogram(
            "heat.writes", buckets=HEAT_BOUNDS, worker=worker
        )
        self._conflicts = registry.histogram(
            "heat.conflicts", buckets=HEAT_BOUNDS, worker=worker
        )

    # -- hot-path recording -------------------------------------------------
    def record_accesses(self, addrs: np.ndarray, is_write: np.ndarray) -> None:
        """Record one chunk's access addresses, split by the write mask.

        One ``searchsorted`` + one ``bincount`` cover *both* series: write
        rows are offset into the upper half of a doubled bucket index, so
        the read/write split costs no second pass over the chunk.
        """
        n = int(len(addrs))
        if n == 0:
            return
        idx = np.searchsorted(_INT_BOUNDS, addrs, side="left")
        idx = idx + is_write * (N_BOUNDS + 1)
        binc = np.bincount(idx, minlength=2 * (N_BOUNDS + 1))
        n_writes = int(np.count_nonzero(is_write))
        for hist, half, total in (
            (self._reads, binc[: N_BOUNDS + 1], n - n_writes),
            (self._writes, binc[N_BOUNDS + 1 :], n_writes),
        ):
            counts = hist.counts
            for i in np.flatnonzero(half).tolist():
                counts[i] += int(half[i])
            hist.count += total  # sum stays 0.0 by design

    def record_batch_rows(self, batch: Any, rows: np.ndarray) -> None:
        """Record the READ/WRITE rows of one chunk of ``batch``.

        ``rows`` may include broadcast rows (FREE, loop markers); only
        memory accesses contribute heat.
        """
        from repro.trace import READ, WRITE

        kind = batch.kind[rows]
        is_read = kind == READ
        is_write = kind == WRITE
        acc = is_read | is_write
        if not acc.any():
            return
        self.record_accesses(batch.addr[rows[acc]], is_write[acc])

    def record_conflict(self, addr: int) -> None:
        """One signature hash-conflict eviction caused by inserting ``addr``."""
        self._conflicts.counts[bucket_of(addr)] += 1
        self._conflicts.count += 1

    # -- publish-time recording --------------------------------------------
    def record_occupancy(self, addrs: np.ndarray, kind: str) -> None:
        """Attribute the tracker's occupied entries (owner addresses) to
        buckets.  Called once per run at publish time, per signature kind."""
        hist = self.registry.histogram(
            "heat.occupancy", buckets=HEAT_BOUNDS, worker=self.worker, kind=kind
        )
        _bulk_record(hist, np.asarray(addrs, dtype=np.int64))

    def record_bank_occupancy(self, occupancy: np.ndarray, kind: str) -> None:
        """Publish a banked tracker's per-bank live-entry counts.

        ``occupancy[i]`` is the live-entry count of bank ``i`` (from
        :meth:`~repro.sigmem.AccessTracker.bank_occupancy`).  Stored as a
        registry histogram whose bucket bounds are the bank indices, so it
        merges additively across processes like every other heat family.
        """
        occ = np.asarray(occupancy)
        n_banks = int(len(occ))
        if n_banks == 0:
            return
        hist = self.registry.histogram(
            BANK_FAMILY,
            buckets=tuple(float(i) for i in range(n_banks)),
            worker=self.worker,
            kind=kind,
        )
        counts = hist.counts
        total = 0
        for i, c in enumerate(occ.tolist()):
            c = int(c)
            counts[i] += c
            total += c
        hist.count += total  # sum stays 0.0 by design

    # -- introspection ------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return self._reads.count

    @property
    def total_writes(self) -> int:
        return self._writes.count

    @property
    def total_conflicts(self) -> int:
        return self._conflicts.count


# -- decoding (report / HTTP surfaces) --------------------------------------


def _merge_counts(total: list[int], counts: list[int]) -> None:
    for i, c in enumerate(counts):
        total[i] += int(c)


def heatmap_summary(registry: MetricsRegistry) -> dict[str, Any] | None:
    """Decode the registry's ``heat.*`` histograms into one document.

    Returns ``None`` when the run recorded no heat (heatmap disabled, or no
    registry-instrumented pipeline ran).  Like
    :func:`~repro.obs.report.liveness_summary`, this reads *only* the
    registry — whichever process recorded the heat, the merged registry is
    the single source of truth.
    """
    per_worker: dict[str, dict[str, Any]] = {}
    totals = {f.split(".", 1)[1]: [0] * (N_BOUNDS + 1) for f in HEAT_FAMILIES}
    banks_per_worker: dict[str, dict[str, list[int]]] = {}
    bank_total: list[int] = []
    found = False
    for h in registry.histograms():
        if h.name == BANK_FAMILY:
            found = True
            labels = dict(h.labels)
            w = labels.get("worker", "?")
            # Bank histograms carry one overflow slot past the bank count;
            # it is never populated (indices observe below the last bound).
            counts = [int(c) for c in h.counts[: len(h.counts) - 1]]
            banks_per_worker.setdefault(w, {})[labels.get("kind", "?")] = counts
            if len(bank_total) < len(counts):
                bank_total.extend([0] * (len(counts) - len(bank_total)))
            for i, c in enumerate(counts):
                bank_total[i] += c
            continue
        if h.name not in HEAT_FAMILIES:
            continue
        found = True
        series = h.name.split(".", 1)[1]
        labels = dict(h.labels)
        w = labels.get("worker", "?")
        wdoc = per_worker.setdefault(
            w, {"reads": None, "writes": None, "conflicts": None, "occupancy": {}}
        )
        if series == "occupancy":
            wdoc["occupancy"][labels.get("kind", "?")] = list(h.counts)
        else:
            wdoc[series] = list(h.counts)
        _merge_counts(totals[series], h.counts)
    if not found:
        return None
    hottest = []
    for i in range(N_BOUNDS + 1):
        r, w = totals["reads"][i], totals["writes"][i]
        if r + w + totals["conflicts"][i] == 0:
            continue
        lo, hi = bucket_range(i)
        hottest.append(
            {
                "bucket": i,
                "lo": lo,
                "hi": hi,
                "reads": r,
                "writes": w,
                "conflicts": totals["conflicts"][i],
                "occupancy": totals["occupancy"][i],
            }
        )
    hottest.sort(key=lambda b: (-(b["reads"] + b["writes"]), b["bucket"]))
    doc = {
        "schema": SCHEMA,
        "n_buckets": N_BOUNDS + 1,
        "bounds": [1 << i for i in range(N_BOUNDS)],
        "workers": dict(sorted(per_worker.items(), key=lambda kv: (len(kv[0]), kv[0]))),
        "totals": totals,
        "total_reads": sum(totals["reads"]),
        "total_writes": sum(totals["writes"]),
        "total_conflicts": sum(totals["conflicts"]),
        "hottest": hottest[:10],
    }
    if bank_total:
        occupied_banks = [c for c in bank_total if c]
        mean = (sum(bank_total) / len(bank_total)) if bank_total else 0.0
        doc["banks"] = {
            "n_banks": len(bank_total),
            "per_worker": dict(
                sorted(banks_per_worker.items(), key=lambda kv: (len(kv[0]), kv[0]))
            ),
            "total": bank_total,
            "occupied_banks": len(occupied_banks),
            "skew": (max(bank_total) / mean) if mean > 0 else 1.0,
        }
    return doc


def heatmap_dict(
    registry: MetricsRegistry, run_id: str | None = None
) -> dict[str, Any]:
    """The ``/heatmap`` endpoint document; always a valid ``ddprof.heatmap/1``
    object, even before any heat was recorded (empty workers, zero totals)."""
    doc = heatmap_summary(registry)
    if doc is None:
        doc = {
            "schema": SCHEMA,
            "n_buckets": N_BOUNDS + 1,
            "bounds": [1 << i for i in range(N_BOUNDS)],
            "workers": {},
            "totals": {
                f.split(".", 1)[1]: [0] * (N_BOUNDS + 1) for f in HEAT_FAMILIES
            },
            "total_reads": 0,
            "total_writes": 0,
            "total_conflicts": 0,
            "hottest": [],
        }
    doc["run_id"] = run_id if run_id is not None else registry.run_id
    return doc
