"""In-process HTTP exporter — scrape the live registry over localhost.

A stdlib-only (:mod:`http.server`) endpoint served from a daemon thread,
so an external scraper — Prometheus, ``curl``, a dashboard — can observe a
profiling run *while it executes* without the profiler writing a single
extra file.  Four endpoints:

* ``GET /metrics``   — Prometheus text exposition of the registry
  (:func:`~repro.obs.export.prometheus_text`), the exact bytes a
  Prometheus scrape job expects.
* ``GET /healthz``   — small JSON liveness document: overall ``status``
  (``ok`` / ``degraded`` when any worker is stalled or dead), the
  ``run_id``, and the per-worker heartbeat verdicts decoded from the
  ``worker.heartbeat.*`` gauges (:func:`~repro.obs.report.liveness_summary`
  — the server never talks to the watchdog, the registry is the one
  source of truth).
* ``GET /snapshot``  — full display snapshot
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) as JSON.
* ``GET /heatmap``   — the memory plane's address-heat document
  (:func:`~repro.obs.heatmap.heatmap_dict`, schema ``ddprof.heatmap/1``):
  per-worker log2-bucketed read/write/conflict/occupancy histograms
  decoded from the ``heat.*`` registry series, plus the hottest buckets.
* ``GET /runs`` and ``GET /runs/<id>`` — the run ledger
  (:mod:`repro.obs.ledger`): the list of persisted run bundles under the
  server's ledger directory, and any one full ``ddprof.run-bundle/1``
  document by run id.

Reads of the registry are lock-free: instruments are only ever mutated by
atomic attribute ops under the GIL, and a scrape that races a tick sees a
slightly stale value, never a torn one.  Binding port 0 picks an ephemeral
port (reported via :attr:`TelemetryHTTPServer.port`), which is what the
tests and the CI smoke step use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.export import prometheus_text
from repro.obs.heatmap import heatmap_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import liveness_summary


def healthz_dict(
    registry: MetricsRegistry, run_id: str | None = None
) -> dict[str, Any]:
    """The ``/healthz`` document; importable so tests can assert its shape
    without a socket."""
    liveness = liveness_summary(registry)
    degraded = liveness is not None and not liveness["healthy"]
    doc: dict[str, Any] = {
        "status": "degraded" if degraded else "ok",
        "run_id": run_id if run_id is not None else registry.run_id,
        "liveness": liveness,
    }
    return doc


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in TelemetryHTTPServer.start().
    registry: MetricsRegistry
    run_id: str | None
    ledger_dir: Any  # Path | None: None = the process default ledger

    #: Quiet by default: request logging to stderr would interleave with
    #: profiler output.
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: ARG002
        pass

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = prometheus_text(self.registry).encode("utf-8")
                self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path == "/healthz":
                doc = healthz_dict(self.registry, self.run_id)
                self._send(
                    200 if doc["status"] == "ok" else 503,
                    "application/json",
                    json.dumps(doc).encode("utf-8"),
                )
            elif path == "/heatmap":
                doc = heatmap_dict(self.registry, self.run_id)
                self._send(
                    200, "application/json", json.dumps(doc).encode("utf-8")
                )
            elif path == "/runs" or path.startswith("/runs/"):
                self._send_runs(path)
            elif path in ("/", "/snapshot"):
                doc = {"run_id": self.run_id, **self.registry.snapshot()}
                self._send(
                    200, "application/json", json.dumps(doc).encode("utf-8")
                )
            else:
                self._send(404, "text/plain", b"not found\n")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _send_runs(self, path: str) -> None:
        """The run-ledger endpoints: ``/runs`` and ``/runs/<id>``."""
        from pathlib import Path

        from repro.obs.ledger import (
            default_ledger_dir,
            list_runs,
            load_bundle,
            validate_run_id,
        )

        root = (
            Path(self.ledger_dir)
            if self.ledger_dir is not None
            else default_ledger_dir()
        )
        if path == "/runs":
            doc = {
                "schema": "ddprof.run-list/1",
                "ledger": str(root),
                "runs": list_runs(root),
            }
            self._send(200, "application/json", json.dumps(doc).encode("utf-8"))
            return
        rid = path[len("/runs/"):]
        try:
            bundle = load_bundle(root / validate_run_id(rid))
        except Exception:  # unknown id, traversal attempt, corrupt bundle
            self._send(404, "text/plain", b"no such run\n")
            return
        self._send(200, "application/json", json.dumps(bundle).encode("utf-8"))


class TelemetryHTTPServer:
    """Serves the registry on ``host:port`` from a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  The server thread and per-request threads are all
    daemonic, so a crashed run never hangs on the exporter — but call
    :meth:`stop` on clean paths to release the socket promptly.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        run_id: str | None = None,
        ledger_dir: Any = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.run_id = run_id if run_id is not None else registry.run_id
        #: Ledger directory served by ``/runs``; ``None`` falls back to
        #: :func:`repro.obs.ledger.default_ledger_dir` at request time.
        self.ledger_dir = ledger_dir
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind, start serving, and return the bound port."""
        if self._httpd is not None:
            return self.port
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "registry": self.registry,
                "run_id": self.run_id,
                "ledger_dir": self.ledger_dir,
            },
        )
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="obs-httpd",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut down the listener; idempotent."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "TelemetryHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
