"""Chrome ``trace_event`` export of a recorded :class:`~repro.obs.tracing.Tracer`.

Produces the JSON object format understood by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer: a
``traceEvents`` array of phase-coded events — ``"M"`` metadata rows naming
each track, ``"X"`` complete slices with microsecond ``ts``/``dur``, and
``"i"`` instants — all under one process, one ``tid`` per pipeline track
(main thread + one per worker).

``validate_chrome_trace`` checks the shape without a browser, so tests and
the CI smoke step can assert a written file is loadable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.tracing import NullTracer, Tracer

#: Single synthetic process id for the whole pipeline.
PID = 1

_US = 1e6  # seconds -> microseconds


def chrome_trace_dict(
    tracer: Tracer | NullTracer, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Convert a tracer's timeline into a Chrome trace_event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": PID,
            "tid": track,
            "ts": 0,
            "name": "thread_name",
            "args": {"name": name},
        }
        for track, name in sorted(tracer.track_names.items())
    ]
    for ev in tracer.events:
        base: dict[str, Any] = {
            "name": ev.name,
            "cat": "pipeline",
            "pid": PID,
            "tid": ev.track,
            "ts": round(ev.ts * _US, 3),
        }
        if ev.args:
            base["args"] = ev.args
        if ev.dur is not None:
            base["ph"] = "X"
            base["dur"] = round(ev.dur * _US, 3)
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        events.append(base)
    other = dict(meta or {})
    if getattr(tracer, "run_id", None) is not None:
        other.setdefault("run_id", tracer.run_id)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer | NullTracer,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write the trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_dict(tracer, meta)), encoding="utf-8")
    return path


#: Phases that carry a payload and therefore require a name.
_NAMED_PHASES = {"X", "B", "E", "i", "M", "C"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Shape-check a trace_event document; returns a list of problems.

    An empty list means the document is loadable by Perfetto /
    ``chrome://tracing``.  Checks the JSON-object container, per-event
    required keys, numeric timestamps, and non-negative durations.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing 'ph'")
            continue
        if ph in _NAMED_PHASES and not isinstance(ev.get("name"), str):
            errors.append(f"{where}: phase {ph!r} requires a string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if ph != "M":
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def validate_chrome_trace_file(path: str | Path) -> list[str]:
    """Validate a trace file on disk (parse errors become one problem)."""
    try:
        obj = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_chrome_trace(obj)
