"""Environment fingerprint — the provenance header every recorded number carries.

Both the structured run report (:mod:`repro.obs.report`) and the benchmark
recorder (:mod:`repro.obs.bench`) attach the same fingerprint, built by the
same function, so the two can never drift: a ``BENCH_*.json`` suite file and
a ``ddprof stats --json`` report from the same machine and commit agree on
every environment key.

The timestamp is *injected, not sampled*: callers that own a "run" (the
benchmark session, a CLI invocation) take one stamp at the start and pass it
to every fingerprint they build, so all records of one run share it and a
fingerprint is reproducible in tests.  The git SHA can likewise be injected
(``DDPROF_GIT_SHA`` wins, for CI checkouts without a ``.git``); otherwise it
is read once per process from ``git rev-parse``.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any

_GIT_SHA_CACHE: dict[str, str] = {}


def peak_rss_bytes() -> int:
    """High-water resident-set size of *this* process, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux but bytes on macOS;
    normalize so the ``process.peak_rss_bytes`` gauge means the same thing
    everywhere.  Returns 0 where the ``resource`` module is unavailable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def git_sha(repo_dir: str | None = None) -> str:
    """Current commit SHA: ``DDPROF_GIT_SHA`` env override, else ``git
    rev-parse HEAD`` in ``repo_dir`` (default: cwd), else ``"unknown"``."""
    injected = os.environ.get("DDPROF_GIT_SHA")
    if injected:
        return injected
    key = repo_dir or os.getcwd()
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=10,
            )
            sha = out.stdout.strip() if out.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            sha = ""
        _GIT_SHA_CACHE[key] = sha or "unknown"
    return _GIT_SHA_CACHE[key]


def environment_fingerprint(
    *,
    timestamp: str | None = None,
    sha: str | None = None,
    repo_dir: str | None = None,
) -> dict[str, Any]:
    """The provenance block shared by run reports and bench records.

    ``timestamp`` is stored verbatim when given (ISO-8601 by convention) and
    omitted when not — this function never samples a clock itself.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    env: dict[str, Any] = {
        "git_sha": sha if sha is not None else git_sha(repo_dir),
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "numpy": numpy_version,
        "executable": sys.executable,
    }
    if timestamp is not None:
        env["timestamp"] = timestamp
    return env
