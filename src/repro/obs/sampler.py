"""Periodic gauge sampling — the telemetry time-series plane.

Scalar counters tell you *how much*; the sampler tells you *when*.  It
polls a set of registered probes (per-worker queue occupancy, signature
slot fill, chunk-pool size, ...) and emits one ``sample`` event per poll
carrying every probed value, so a JSONL log becomes a time series that can
show queue back-pressure building or a signature filling up mid-run.

Two driving modes, matching the pipeline's two execution modes:

* **manual** — the deterministic producer calls :meth:`poll` at its window
  cadence; polls are rate-limited by ``min_interval_s`` (0 = every call).
* **threaded** — :meth:`start` spins a daemon thread polling every
  ``period_s``; used by the ``threads`` pipeline mode.  :meth:`stop` joins
  it and takes one final sample so short runs always log at least one.

The threaded mode (and every other periodic telemetry thread — the
:class:`~repro.obs.streamer.TelemetryStreamer`, the processes-mode
watchdog) drives its ticks through :func:`deadline_loop`, which schedules
against a monotonic deadline *grid* rather than ``sleep(interval)`` after
each tick: a tick that takes 70% of the period still fires the next tick
on the grid instead of drifting 70% late every cycle.  A tick that
overruns a whole period fires immediately once, counts the missed grid
points, and realigns.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry, format_name


def deadline_loop(
    tick: Callable[[], None],
    period_s: float,
    wait: Callable[[float], bool],
    clock: Callable[[], float] = time.perf_counter,
    on_missed: Callable[[int], None] | None = None,
) -> None:
    """Drive ``tick()`` on a fixed monotonic grid until ``wait`` says stop.

    ``wait(seconds)`` must block for at most ``seconds`` and return True to
    stop the loop (a ``threading.Event.wait`` bound fits exactly).  Ticks
    are scheduled at ``t0 + k * period_s``: a slow tick eats into the next
    wait instead of postponing the whole grid.  When a tick overruns one or
    more full periods the loop fires immediately, reports the number of
    skipped grid points through ``on_missed``, and realigns to the next
    future grid point — cadence degrades to back-to-back ticks, never to an
    unbounded backlog.

    ``clock`` is injectable so tests can drive the loop with a fake clock
    (pair it with a ``wait`` that advances the same clock).
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    next_t = clock() + period_s
    while True:
        delay = next_t - clock()
        if wait(max(0.0, delay)):
            return
        tick()
        next_t += period_s
        now = clock()
        if next_t <= now:
            missed = int((now - next_t) // period_s) + 1
            if on_missed is not None:
                on_missed(missed)
            next_t += missed * period_s


class Sampler:
    """Polls registered probes into gauges + ``sample`` events."""

    def __init__(
        self,
        registry: MetricsRegistry,
        min_interval_s: float = 0.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self._last_poll = float("-inf")
        self.n_samples = 0
        #: Grid points skipped because a poll overran the sampling period
        #: (threaded mode only) — nonzero means the cadence was briefly
        #: saturated, not silently skewed.
        self.ticks_missed = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def add(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        """Register one probe; its gauge reads live via the callback."""
        gauge = self.registry.gauge_fn(name, fn, **labels)
        self._probes.append((format_name(gauge.name, gauge.labels), fn))

    @property
    def n_probes(self) -> int:
        return len(self._probes)

    def poll(self, force: bool = False) -> bool:
        """Take one sample if the rate limit allows; True when sampled."""
        if not self._probes:
            return False
        now = self._clock()
        if not force and now - self._last_poll < self.min_interval_s:
            return False
        self._last_poll = now
        self.n_samples += 1
        if self.registry.sink.enabled:
            values = {name: float(fn()) for name, fn in self._probes}
            self.registry.emit(
                {"type": "sample", "seq": self.n_samples, "values": values}
            )
        return True

    # -- threaded driving (pipeline mode "threads") ---------------------------
    def _on_missed(self, n: int) -> None:
        self.ticks_missed += n

    def _run_loop(
        self, period_s: float, wait: Callable[[float], bool]
    ) -> None:
        """The deadline-grid polling loop (factored out for fake-clock
        tests: drive it inline with a synthetic ``wait``/``clock``)."""
        deadline_loop(
            lambda: self.poll(force=True),
            period_s,
            wait,
            clock=self._clock,
            on_missed=self._on_missed,
        )

    def start(self, period_s: float = 0.01) -> None:
        """Poll from a daemon thread every ``period_s`` until :meth:`stop`.

        Ticks are scheduled against a monotonic deadline grid (see
        :func:`deadline_loop`), so a slow sample callback does not skew the
        cadence the way a fixed ``sleep(period)`` after each poll would.
        """
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(period_s, self._stop.wait),
            name="obs-sampler",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and take exactly one final sample.

        Idempotent: a second ``stop()`` (or a ``stop()`` without a prior
        ``start()``) is a no-op, so an abort path that stops the sampler in
        a ``finally`` block never double-records the final sample.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        self.poll(force=True)

    @property
    def running(self) -> bool:
        """True while the daemon sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()
