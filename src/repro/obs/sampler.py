"""Periodic gauge sampling — the telemetry time-series plane.

Scalar counters tell you *how much*; the sampler tells you *when*.  It
polls a set of registered probes (per-worker queue occupancy, signature
slot fill, chunk-pool size, ...) and emits one ``sample`` event per poll
carrying every probed value, so a JSONL log becomes a time series that can
show queue back-pressure building or a signature filling up mid-run.

Two driving modes, matching the pipeline's two execution modes:

* **manual** — the deterministic producer calls :meth:`poll` at its window
  cadence; polls are rate-limited by ``min_interval_s`` (0 = every call).
* **threaded** — :meth:`start` spins a daemon thread polling every
  ``period_s``; used by the ``threads`` pipeline mode.  :meth:`stop` joins
  it and takes one final sample so short runs always log at least one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry, format_name


class Sampler:
    """Polls registered probes into gauges + ``sample`` events."""

    def __init__(
        self, registry: MetricsRegistry, min_interval_s: float = 0.0
    ) -> None:
        self.registry = registry
        self.min_interval_s = min_interval_s
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self._last_poll = float("-inf")
        self.n_samples = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def add(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        """Register one probe; its gauge reads live via the callback."""
        gauge = self.registry.gauge_fn(name, fn, **labels)
        self._probes.append((format_name(gauge.name, gauge.labels), fn))

    @property
    def n_probes(self) -> int:
        return len(self._probes)

    def poll(self, force: bool = False) -> bool:
        """Take one sample if the rate limit allows; True when sampled."""
        if not self._probes:
            return False
        now = time.perf_counter()
        if not force and now - self._last_poll < self.min_interval_s:
            return False
        self._last_poll = now
        self.n_samples += 1
        if self.registry.sink.enabled:
            values = {name: float(fn()) for name, fn in self._probes}
            self.registry.emit(
                {"type": "sample", "seq": self.n_samples, "values": values}
            )
        return True

    # -- threaded driving (pipeline mode "threads") ---------------------------
    def start(self, period_s: float = 0.01) -> None:
        """Poll from a daemon thread every ``period_s`` until :meth:`stop`."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(period_s):
                self.poll(force=True)

        self._stop.clear()
        self._thread = threading.Thread(
            target=loop, name="obs-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and take exactly one final sample.

        Idempotent: a second ``stop()`` (or a ``stop()`` without a prior
        ``start()``) is a no-op, so an abort path that stops the sampler in
        a ``finally`` block never double-records the final sample.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        self.poll(force=True)

    @property
    def running(self) -> bool:
        """True while the daemon sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()
