"""Dependence provenance — *why is this dependence in the output?*

Every merged dependence record the profiler reports is the survivor of
potentially millions of runtime instances, observed by some worker, in some
chunk, built from some signature slot.  The provenance layer keeps exactly
that attribution alongside the dependence store:

* which worker(s) discovered the dependence,
* the first/last chunk index and first/last sink-access timestamp of the
  observation window,
* how many instances were folded into the record,
* a ``suspect_fp`` flag raised when the *source* signature slot had a hash
  collision or eviction — the Eq. 2 false-positive mechanism of §III-B —
  plus an optional cross-check against a perfect (collision-free) oracle
  run that settles whether the record is actually spurious.

The collector is keyed by the (hashable) dependence record itself, so
per-worker collectors fold together at merge time exactly like the
dependence stores they annotate.  This module stays import-clean of the
profiler (the oracle check imports lazily), matching the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from repro.common.config import ProfilerConfig
    from repro.core.deps import Dependence
    from repro.trace import TraceBatch


class ProvenanceRecord:
    """Attribution of one merged dependence record."""

    __slots__ = (
        "workers",
        "first_chunk",
        "last_chunk",
        "first_ts",
        "last_ts",
        "count",
        "suspect_fp",
        "oracle_spurious",
    )

    def __init__(self, worker: int, chunk: int, ts: int, suspect: bool) -> None:
        self.workers: set[int] = {worker}
        self.first_chunk = chunk
        self.last_chunk = chunk
        self.first_ts = ts
        self.last_ts = ts
        self.count = 1
        self.suspect_fp = suspect
        #: ``None`` until an oracle cross-check runs; then True if the
        #: perfect run never produced this record (a confirmed false
        #: positive) or False if the oracle reproduces it.
        self.oracle_spurious: bool | None = None

    def note(self, worker: int, chunk: int, ts: int, suspect: bool) -> None:
        self.workers.add(worker)
        if chunk < self.first_chunk:
            self.first_chunk = chunk
        if chunk > self.last_chunk:
            self.last_chunk = chunk
        if ts < self.first_ts:
            self.first_ts = ts
        if ts > self.last_ts:
            self.last_ts = ts
        self.count += 1
        self.suspect_fp = self.suspect_fp or suspect

    def fold(self, other: "ProvenanceRecord") -> None:
        """Merge another record for the same dependence (pipeline merge)."""
        self.workers |= other.workers
        self.first_chunk = min(self.first_chunk, other.first_chunk)
        self.last_chunk = max(self.last_chunk, other.last_chunk)
        self.first_ts = min(self.first_ts, other.first_ts)
        self.last_ts = max(self.last_ts, other.last_ts)
        self.count += other.count
        self.suspect_fp = self.suspect_fp or other.suspect_fp
        if other.oracle_spurious is not None:
            self.oracle_spurious = other.oracle_spurious

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": sorted(self.workers),
            "chunks": [self.first_chunk, self.last_chunk],
            "ts": [self.first_ts, self.last_ts],
            "count": self.count,
            "suspect_fp": self.suspect_fp,
            "oracle_spurious": self.oracle_spurious,
        }

    def __repr__(self) -> str:
        return (
            f"ProvenanceRecord(workers={sorted(self.workers)}, "
            f"chunks={self.first_chunk}..{self.last_chunk}, "
            f"ts={self.first_ts}..{self.last_ts}, count={self.count}, "
            f"suspect_fp={self.suspect_fp})"
        )


class ProvenanceCollector:
    """Per-worker (and merged) provenance map, keyed by dependence record.

    The engine calls :meth:`note` once per dependence *instance*; the
    worker sets :attr:`chunk` before each chunk so notes are attributed to
    the chunk being processed.  ``worker=0, chunk=-1`` is the sequential
    engine's identity (no pipeline).
    """

    def __init__(self, worker: int = 0) -> None:
        self.worker = worker
        #: Sequence number of the chunk currently being processed.
        self.chunk = -1
        self.records: dict[Hashable, ProvenanceRecord] = {}

    def note(self, dep: "Dependence", ts: int, suspect: bool = False) -> None:
        rec = self.records.get(dep)
        if rec is None:
            self.records[dep] = ProvenanceRecord(self.worker, self.chunk, ts, suspect)
        else:
            rec.note(self.worker, self.chunk, ts, suspect)

    def merge(self, other: "ProvenanceCollector") -> None:
        """Fold another collector in (the pipeline's merge phase)."""
        for dep, rec in other.records.items():
            mine = self.records.get(dep)
            if mine is None:
                # Records are mutable; keep merge cheap by adopting the
                # other collector's record (collectors are merged exactly
                # once, at the end of the run).
                self.records[dep] = rec
            else:
                mine.fold(rec)

    def get(self, dep: "Dependence") -> ProvenanceRecord | None:
        return self.records.get(dep)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple["Dependence", ProvenanceRecord]]:
        return iter(self.records.items())

    @property
    def n_suspect(self) -> int:
        return sum(1 for r in self.records.values() if r.suspect_fp)

    @property
    def n_oracle_spurious(self) -> int:
        return sum(1 for r in self.records.values() if r.oracle_spurious)

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-ready rows, deterministically ordered."""
        rows = []
        for dep, rec in self.records.items():
            row = dep.to_dict() if hasattr(dep, "to_dict") else {"dep": repr(dep)}
            row["provenance"] = rec.to_dict()
            rows.append(row)
        rows.sort(key=lambda r: json_key(r))
        return rows


def json_key(row: dict[str, Any]) -> tuple:
    """Stable sort key over serialized provenance rows."""
    return (
        row.get("sink_loc", 0),
        row.get("sink_tid", 0),
        row.get("type", ""),
        row.get("source_loc", 0),
        row.get("source_tid", 0),
        row.get("var", 0),
    )


def oracle_cross_check(
    provenance: ProvenanceCollector,
    batch: "TraceBatch",
    config: "ProfilerConfig",
) -> int:
    """Settle ``suspect_fp`` flags against a perfect-signature oracle run.

    Re-profiles ``batch`` with the collision-free tracker (the
    :mod:`repro.sigmem` perfect/shadow oracle the paper uses for its
    FPR/FNR baseline), then marks every provenance record whose dependence
    the oracle never produced as ``oracle_spurious=True`` — a *confirmed*
    Eq. 2 hash-collision false positive — and the rest ``False``.

    Returns the number of confirmed-spurious records.  Costs one extra
    profiling pass; only ever run it on demand.
    """
    from repro.core.profiler import profile_trace  # local: avoid obs->core cycle

    oracle_result = profile_trace(
        batch, config.with_(perfect_signature=True), engine="vectorized"
    )
    truth = oracle_result.store.as_set(with_tids=True, with_carried=True)
    spurious = 0
    for dep, rec in provenance.records.items():
        rec.oracle_spurious = dep.projected() not in truth
        if rec.oracle_spurious:
            spurious += 1
    return spurious
