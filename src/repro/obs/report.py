"""The structured run-report — one JSON document per profiling run.

``RunReport.build`` freezes a :class:`~repro.obs.metrics.MetricsRegistry`
(plus, when available, the :class:`~repro.core.result.ProfileResult` and
:class:`~repro.parallel.engine.ParallelRunInfo`) into a single
machine-readable document.  This is the profiler's quantitative contract:
every number the paper charts — slowdown phases, memory, queue stalls,
load imbalance — appears under a stable key, so before/after comparisons
across PRs are a JSON diff instead of log archaeology.

Schema (``ddprof.run-report/1``)::

    {
      "schema": "ddprof.run-report/1",
      "meta":       {workload, variant, engine, workers, ...},
      "environment": {git_sha, cpus, platform, python, numpy, ...},
      "phases":     [{"phase": ..., "seconds": ..., "count": ...}, ...],
      "counters":   {"queue.push_stalls{worker=\"0\"}": 3, ...},
      "gauges":     {...},
      "histograms": {name: {buckets, counts, sum, count}, ...},
      "profile":    {accesses, reads, writes, deps, races, memory, ...},
      "parallel":   {workers, stalls, imbalance, rebalancing, ...} | null,
      "memory":     {heatmap, rebalance_audit, peak_rss_bytes} | null
    }

See ``docs/observability.md`` for the metric catalog and
``docs/output_format.md`` for how this report relates to the dependence
output format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.obs.environment import environment_fingerprint
from repro.obs.heatmap import heatmap_summary
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from repro.core.result import ProfileResult
    from repro.parallel.engine import ParallelRunInfo

SCHEMA = "ddprof.run-report/1"

#: Gauge encoding of a worker's liveness: ``worker.heartbeat.state`` holds
#: the index into this tuple (0 = live, 1 = stalled, 2 = dead).  Defined
#: here — not in :mod:`repro.parallel.heartbeat` — because the obs layer
#: (reports, the HTTP ``/healthz`` endpoint) must decode the gauges without
#: importing the parallel package.
HEARTBEAT_STATES = ("live", "stalled", "dead")


def liveness_summary(registry: MetricsRegistry) -> dict[str, Any] | None:
    """Decode ``worker.heartbeat.*`` gauges into a liveness section.

    Returns ``None`` when the run recorded no heartbeats (sequential modes,
    threads mode).  The summary is computed purely from the registry — the
    watchdog writes gauges, everything downstream (report, ``/healthz``)
    reads them — so there is exactly one source of truth for worker state.
    """
    states: dict[str, int] = {}
    ages: dict[str, float] = {}
    beats: dict[str, int] = {}
    for g in registry.gauges():
        labels = dict(g.labels)
        if g.name == "worker.heartbeat.state":
            states[labels.get("worker", "?")] = int(g.value)
        elif g.name == "worker.heartbeat.age_seconds":
            ages[labels.get("worker", "?")] = round(g.value, 6)
        elif g.name == "worker.heartbeat.beats":
            beats[labels.get("worker", "?")] = int(g.value)
    if not states:
        return None
    workers: dict[str, Any] = {}
    counts = dict.fromkeys(HEARTBEAT_STATES, 0)
    for w in sorted(states, key=lambda w: (len(w), w)):
        code = states[w]
        name = (
            HEARTBEAT_STATES[code]
            if 0 <= code < len(HEARTBEAT_STATES)
            else f"unknown({code})"
        )
        if name in counts:
            counts[name] += 1
        workers[w] = {
            "state": name,
            "age_seconds": ages.get(w, 0.0),
            "beats": beats.get(w, 0),
        }
    return {
        "workers": workers,
        "live": counts["live"],
        "stalled": counts["stalled"],
        "dead": counts["dead"],
        "stall_events": registry.sum_counters("worker.heartbeat.stalls"),
        "healthy": counts["stalled"] == 0 and counts["dead"] == 0,
    }


def memory_section(
    registry: MetricsRegistry, info: "ParallelRunInfo | None" = None
) -> dict[str, Any] | None:
    """The report's memory plane: address heatmap, rebalance audit trail,
    and per-process RSS high-water marks.

    ``None`` when the run recorded none of the three (e.g. sequential runs
    without a registry-instrumented pipeline).
    """
    heat = heatmap_summary(registry)
    audit = list(info.rebalance_audit) if info is not None else []
    rss: dict[str, int] = {}
    for g in registry.gauges():
        if g.name != "process.peak_rss_bytes":
            continue
        labels = dict(g.labels)
        key = labels.get("worker", "main")
        rss[key] = int(g.value)
    if heat is None and not audit and not rss:
        return None
    return {
        "heatmap": heat,
        "rebalance_audit": audit,
        "peak_rss_bytes": dict(sorted(rss.items(), key=lambda kv: (len(kv[0]), kv[0]))),
    }


def _profile_section(result: "ProfileResult") -> dict[str, Any]:
    s = result.stats
    return {
        "events": s.n_events,
        "accesses": s.n_accesses,
        "reads": s.n_reads,
        "writes": s.n_writes,
        "unique_addresses": s.n_unique_addresses,
        "dep_instances": {t.name: c for t, c in s.dep_instances.items()},
        "total_instances": s.total_instances,
        "merged_dependences": result.store.n_entries,
        "merge_reduction_factor": result.merge_reduction_factor,
        "races_flagged": s.races_flagged,
        "tracker_memory_bytes": s.tracker_memory_bytes,
        "multithreaded": result.multithreaded,
    }


def _parallel_section(info: "ParallelRunInfo") -> dict[str, Any]:
    return {
        "workers": info.n_workers,
        "chunks": info.n_chunks,
        "broadcast_rows": info.n_broadcast_rows,
        "per_worker_accesses": list(info.per_worker_accesses),
        "per_worker_chunks": list(info.per_worker_chunks),
        "access_imbalance": info.access_imbalance,
        "push_stalls": info.push_stalls,
        "pop_stalls": info.pop_stalls,
        "lock_ops": info.lock_ops,
        "rebalance_rounds": info.rebalance_rounds,
        "addresses_migrated": info.addresses_migrated,
        "chunks_allocated": info.chunks_allocated,
        "queue_memory_bytes": info.queue_memory_bytes,
        "signature_memory_bytes": info.signature_memory_bytes,
    }


@dataclass
class RunReport:
    """Frozen view of one run's telemetry."""

    meta: dict[str, Any] = field(default_factory=dict)
    #: Correlation id of the run.  The same id is stamped on every sink
    #: event, every structured-log line, the telemetry stream, and the
    #: Chrome trace export, so all planes of one run can be joined on it.
    run_id: str | None = None
    #: Provenance of the machine/commit that produced the run — the same
    #: fingerprint ``BENCH_*.json`` records carry (one shared helper,
    #: :func:`repro.obs.environment.environment_fingerprint`, so the two
    #: can never drift).
    environment: dict[str, Any] = field(default_factory=dict)
    phases: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] = field(default_factory=dict)
    parallel: dict[str, Any] | None = None
    #: Memory plane: address heatmap + rebalance audit + peak RSS; ``None``
    #: when the run recorded none of them.
    memory: dict[str, Any] | None = None
    #: Timeline summary (per-track busy/stall/idle fractions) when the
    #: run's registry carried an enabled tracer; ``None`` otherwise.
    trace: dict[str, Any] | None = None
    #: Per-dependence provenance rows when the run collected them.
    provenance: list[dict[str, Any]] | None = None
    #: Worker liveness (heartbeat watchdog verdicts) for processes-mode
    #: runs with heartbeats enabled; ``None`` otherwise.
    liveness: dict[str, Any] | None = None

    @classmethod
    def build(
        cls,
        registry: MetricsRegistry,
        result: "ProfileResult | None" = None,
        info: "ParallelRunInfo | None" = None,
        **meta: Any,
    ) -> "RunReport":
        snap = registry.snapshot()
        phases = [
            {"phase": name, "seconds": agg["seconds"], "count": int(agg["count"])}
            for name, agg in registry.phase_totals().items()
        ]
        prov = getattr(result, "provenance", None)
        return cls(
            meta=dict(meta),
            run_id=registry.run_id,
            environment=environment_fingerprint(),
            phases=phases,
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            profile=_profile_section(result) if result is not None else {},
            parallel=_parallel_section(info) if info is not None else None,
            memory=memory_section(registry, info),
            trace=registry.tracer.summary() if registry.tracer.enabled else None,
            provenance=prov.to_list() if prov is not None else None,
            liveness=liveness_summary(registry),
        )

    # -- derived sections -----------------------------------------------------
    def producer_summary(self) -> dict[str, Any] | None:
        """Roll up the ``producer.*`` counters (affine fast path, trace
        cache), or ``None`` when the run never built a trace."""

        def family(prefix: str) -> int:
            return sum(
                v
                for k, v in self.counters.items()
                if k == prefix or k.startswith(prefix + "{")
            )

        # Any producer instrument qualifies — a run served entirely from the
        # trace cache has only ``producer.trace_cache_hits`` (no events_*
        # counters) and must still render its producer section.
        has_producer = any(
            k.startswith("producer.") for k in self.counters
        ) or "producer.fastpath_coverage" in self.gauges
        if not has_producer:
            return None
        fast = family("producer.events_fastpath")
        interp = family("producer.events_interpreted")
        total = fast + interp
        coverage = self.gauges.get(
            "producer.fastpath_coverage", fast / total if total else 0.0
        )
        verdicts = {
            k.split('verdict="', 1)[1].rstrip('"}'): v
            for k, v in self.counters.items()
            if k.startswith("producer.loop_verdicts{")
        }
        return {
            "events_total": total,
            "events_fastpath": fast,
            "events_interpreted": interp,
            "fastpath_fraction": fast / total if total else 0.0,
            "fastpath_coverage": coverage,
            "fastpath_loops": family("producer.fastpath_loops"),
            "fastpath_iterations": family("producer.fastpath_iterations"),
            "templates_compiled": family("producer.templates_compiled"),
            "template_rejects": family("producer.template_rejects"),
            "classify_cache_hits": family("producer.classify_cache_hits"),
            "loop_verdicts": verdicts,
            "bailouts": family("producer.fastpath_bailouts"),
            "trace_cache_hits": family("producer.trace_cache_hits"),
            "trace_cache_misses": family("producer.trace_cache_misses"),
        }

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "run_id": self.run_id,
            "environment": self.environment,
            "phases": self.phases,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "profile": self.profile,
            "producer": self.producer_summary(),
            "parallel": self.parallel,
            "memory": self.memory,
            "trace": self.trace,
            "provenance": self.provenance,
            "liveness": self.liveness,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    # -- human rendering ------------------------------------------------------
    def render(self) -> str:
        """Terminal-friendly summary (``ddprof stats`` default output)."""
        lines: list[str] = []
        if self.meta:
            head = " ".join(f"{k}={v}" for k, v in self.meta.items())
            lines.append(f"run report [{head}]")
        else:
            lines.append("run report")
        if self.run_id:
            lines.append(f"  run id: {self.run_id}")
        if self.environment:
            env = self.environment
            sha = str(env.get("git_sha", "unknown"))[:12]
            lines.append(
                f"  environment: {sha} on {env.get('cpus', '?')} cpus, "
                f"python {env.get('python', '?')}, numpy {env.get('numpy', '?')}"
            )
        if self.phases:
            lines.append("  phases:")
            total = sum(p["seconds"] for p in self.phases)
            for p in sorted(self.phases, key=lambda p: -p["seconds"]):
                pct = 100.0 * p["seconds"] / total if total else 0.0
                lines.append(
                    f"    {p['phase']:<14s} {p['seconds'] * 1e3:10.3f} ms"
                    f"  x{p['count']:<5d} {pct:5.1f}%"
                )
        if self.profile:
            pr = self.profile
            lines.append(
                "  profile: "
                f"{pr['accesses']} accesses ({pr['reads']}r/{pr['writes']}w), "
                f"{pr['merged_dependences']} merged deps "
                f"({pr['total_instances']} instances, "
                f"{pr['merge_reduction_factor']:.0f}x merge), "
                f"{pr['races_flagged']} potential races"
            )
            lines.append(
                f"  memory: {pr['tracker_memory_bytes']} tracker bytes, "
                f"{pr['unique_addresses']} unique addresses"
            )
        if self.parallel:
            pa = self.parallel
            lines.append(
                f"  pipeline: {pa['workers']} workers, {pa['chunks']} chunks, "
                f"imbalance {pa['access_imbalance']:.2f}, "
                f"stalls push={pa['push_stalls']} pop={pa['pop_stalls']}, "
                f"rebalances {pa['rebalance_rounds']} "
                f"({pa['addresses_migrated']} addresses moved)"
            )
        if self.memory:
            mem = self.memory
            heat = mem.get("heatmap")
            if heat:
                line = (
                    f"  heat: {heat['total_reads']}r/{heat['total_writes']}w "
                    f"across {len(heat['workers'])} workers, "
                    f"{heat['total_conflicts']} signature conflicts"
                )
                if heat["hottest"]:
                    hot = heat["hottest"][0]
                    hi = hot["hi"] if hot["hi"] is not None else "inf"
                    line += (
                        f"; hottest bucket [{hot['lo']}, {hi}] "
                        f"({hot['reads']}r/{hot['writes']}w)"
                    )
                lines.append(line)
            audit = mem.get("rebalance_audit")
            if audit:
                moved = sum(a["n_moves"] for a in audit)
                last = audit[-1]
                lines.append(
                    f"  rebalance audit: {len(audit)} rounds, {moved} addresses "
                    f"moved; last round imbalance "
                    f"{last['imbalance_before']:.2f} -> {last['imbalance_after']:.2f}"
                )
            rss = mem.get("peak_rss_bytes")
            if rss:
                parts = ", ".join(
                    f"{k}={v / (1 << 20):.1f}MiB" for k, v in rss.items()
                )
                lines.append(f"  peak rss: {parts}")
        if self.liveness:
            lv = self.liveness
            lines.append(
                f"  liveness: {lv['live']} live, {lv['stalled']} stalled, "
                f"{lv['dead']} dead ({lv['stall_events']} stall events)"
            )
            for w, st in lv["workers"].items():
                if st["state"] != "live":
                    lines.append(
                        f"    worker {w}: {st['state']} "
                        f"(last beat {st['age_seconds'] * 1e3:.0f} ms ago, "
                        f"{st['beats']} beats)"
                    )
        if self.trace:
            tr = self.trace
            lines.append(
                f"  trace: {tr['n_events']} events over "
                f"{tr['wall_seconds'] * 1e3:.3f} ms wall"
            )
            for name, t in tr["tracks"].items():
                lines.append(
                    f"    {name:<10s} busy {t['busy_frac'] * 100:5.1f}%  "
                    f"stall {t['stall_frac'] * 100:5.1f}%  "
                    f"idle {t['idle_frac'] * 100:5.1f}%  "
                    f"({t['events']} events)"
                )
        producer = self.producer_summary()
        if producer is not None:
            lines.append(
                f"  producer: {producer['events_total']} events emitted, "
                f"fastpath coverage {producer['fastpath_coverage'] * 100:.1f}%, "
                f"{producer['fastpath_loops']} loop executions vectorized, "
                f"{producer['bailouts']} bailouts"
            )
            if producer["loop_verdicts"]:
                pairs = ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(producer["loop_verdicts"].items())
                )
                lines.append(f"  loop verdicts: {pairs}")
        if self.provenance is not None:
            n_suspect = sum(1 for r in self.provenance if r["provenance"]["suspect_fp"])
            lines.append(
                f"  provenance: {len(self.provenance)} dependences attributed, "
                f"{n_suspect} suspect false positives"
            )
        if self.counters:
            lines.append("  counters:")
            for name, v in self.counters.items():
                lines.append(f"    {name:<48s} {v}")
        if self.gauges:
            lines.append("  gauges:")
            for name, v in self.gauges.items():
                fv = f"{v:.4f}".rstrip("0").rstrip(".") if v else "0"
                lines.append(f"    {name:<48s} {fv}")
        return "\n".join(lines) + "\n"
