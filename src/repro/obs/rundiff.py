"""Cross-run dependence-regression diffing over two ledger bundles.

``diff_bundles(a, b)`` compares two ``ddprof.run-bundle/1`` documents
(:mod:`repro.obs.ledger`) and classifies the drift between them:

* **dependence edges** added/removed, keyed by the canonical
  source-location edge identity (:func:`repro.obs.ledger.edge_key`), so
  trace ordering and scheduling noise are invisible — identical programs
  under identical configs produce identical digests and an empty diff;
* **verdict flips** per loop site — a flip toward a *less* parallel
  verdict (``doall → sequential``, ``reduction → pipeline``, …) is a
  flagged *regression*, a flip toward more parallelism an *improvement*
  (ranking in :data:`repro.obs.ledger.VERDICT_RANK`);
* **fast-path coverage** and **metric deltas** through the same noise-band
  classifier the bench gate uses (:func:`repro.obs.bench.classify_delta`):
  coverage has a declared direction (higher is better); raw run counters
  and gauges have none and classify ``changed`` when they leave the band —
  *noticed*, never gating;
* **suspect-FP provenance** keys appearing/disappearing.

Exit-code contract (``ddprof runs diff``): the diff **fails** (non-zero)
exactly when :attr:`RunDiff.regressions` is non-empty — by default only
verdict regressions gate, because dependence-edge churn under lossy
signatures and metric movement are expected between configs; ``strict=True``
escalates added edges, a coverage regression, and new suspect FPs to
failures as well.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.bench import DEFAULT_MAD_FACTOR, classify_delta
from repro.obs.ledger import VERDICT_RANK, edge_key

SCHEMA = "ddprof.run-diff/1"

#: At most this many individual edges are listed in the text rendering.
_MAX_LISTED = 20


@dataclass
class VerdictFlip:
    """One loop whose parallelism verdict changed between the runs."""

    site: str
    before: str
    after: str

    @property
    def direction(self) -> str:
        a = VERDICT_RANK.get(self.before, -1)
        b = VERDICT_RANK.get(self.after, -1)
        if a < 0 or b < 0:
            return "lateral"
        return "regression" if b < a else "improvement"

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "before": self.before,
            "after": self.after,
            "direction": self.direction,
        }


@dataclass
class MetricDelta:
    """One counter/gauge/coverage value that left the noise band."""

    name: str
    base: float
    current: float
    status: str  # changed | improved | regressed
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base,
            "current": self.current,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass
class RunDiff:
    """The classified drift between two run bundles."""

    run_a: str
    run_b: str
    meta_a: dict[str, Any] = field(default_factory=dict)
    meta_b: dict[str, Any] = field(default_factory=dict)
    digest_a: str | None = None
    digest_b: str | None = None
    n_edges_a: int | None = None
    n_edges_b: int | None = None
    edges_added: list[dict[str, Any]] = field(default_factory=list)
    edges_removed: list[dict[str, Any]] = field(default_factory=list)
    verdict_flips: list[VerdictFlip] = field(default_factory=list)
    loops_only_a: list[str] = field(default_factory=list)
    loops_only_b: list[str] = field(default_factory=list)
    coverage: MetricDelta | None = None
    metrics: list[MetricDelta] = field(default_factory=list)
    n_metrics_compared: int = 0
    suspect_added: list[str] = field(default_factory=list)
    suspect_removed: list[str] = field(default_factory=list)
    strict: bool = False

    # -- verdicts ----------------------------------------------------------
    @property
    def verdict_regressions(self) -> list[VerdictFlip]:
        return [f for f in self.verdict_flips if f.direction == "regression"]

    @property
    def regressions(self) -> list[str]:
        """What fails the exit code: verdict regressions always; added
        edges / coverage drop / new suspect FPs only under ``strict``."""
        out = [
            f"loop {f.site} verdict {f.before} -> {f.after}"
            for f in self.verdict_regressions
        ]
        if self.strict:
            if self.edges_added:
                out.append(f"{len(self.edges_added)} dependence edge(s) added")
            if self.coverage is not None and self.coverage.status == "regressed":
                out.append(
                    f"fastpath coverage {self.coverage.base:.4g} -> "
                    f"{self.coverage.current:.4g}"
                )
            if self.suspect_added:
                out.append(f"{len(self.suspect_added)} new suspect FP(s)")
        return out

    @property
    def identical(self) -> bool:
        """True when nothing observable drifted (the self-diff contract)."""
        return not (
            self.edges_added
            or self.edges_removed
            or self.verdict_flips
            or self.loops_only_a
            or self.loops_only_b
            or self.coverage is not None
            or self.metrics
            or self.suspect_added
            or self.suspect_removed
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "run_a": self.run_a,
            "run_b": self.run_b,
            "meta_a": self.meta_a,
            "meta_b": self.meta_b,
            "identical": self.identical,
            "regressions": self.regressions,
            "strict": self.strict,
            "dependences": {
                "digest_a": self.digest_a,
                "digest_b": self.digest_b,
                "n_edges_a": self.n_edges_a,
                "n_edges_b": self.n_edges_b,
                "added": self.edges_added,
                "removed": self.edges_removed,
            },
            "verdict_flips": [f.to_dict() for f in self.verdict_flips],
            "loops_only_a": self.loops_only_a,
            "loops_only_b": self.loops_only_b,
            "coverage": None if self.coverage is None else self.coverage.to_dict(),
            "metrics": {
                "compared": self.n_metrics_compared,
                "changed": [m.to_dict() for m in self.metrics],
            },
            "suspect_fp": {
                "added": self.suspect_added,
                "removed": self.suspect_removed,
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        lines = [f"run diff {self.run_a} -> {self.run_b}"]
        for side, meta in (("a", self.meta_a), ("b", self.meta_b)):
            head = " ".join(
                f"{k}={v}"
                for k, v in meta.items()
                if v is not None and k in ("workload", "variant", "engine", "mode", "slots")
            )
            if head:
                lines.append(f"  {side}: {head}")
        if self.meta_a.get("workload") != self.meta_b.get("workload"):
            lines.append(
                "  warning: comparing different workloads "
                f"({self.meta_a.get('workload')} vs {self.meta_b.get('workload')})"
            )
        if self.digest_a is not None and self.digest_a == self.digest_b:
            lines.append(
                f"  dependences: identical ({self.n_edges_a} edges, "
                f"digest {self.digest_a[:19]}...)"
            )
        else:
            lines.append(
                f"  dependences: +{len(self.edges_added)} / "
                f"-{len(self.edges_removed)} edges "
                f"({self.n_edges_a} -> {self.n_edges_b})"
            )
            for sign, edges in (("+", self.edges_added), ("-", self.edges_removed)):
                for e in edges[:_MAX_LISTED]:
                    carried = (
                        f" carried {','.join(e['carried'])}" if e.get("carried") else ""
                    )
                    lines.append(
                        f"    {sign} {e['type']} {e['source']} -> {e['sink']} "
                        f"var {e['var']}{carried}"
                    )
                if len(edges) > _MAX_LISTED:
                    lines.append(
                        f"    {sign} ... and {len(edges) - _MAX_LISTED} more"
                    )
        for f in self.verdict_flips:
            tag = f.direction.upper() if f.direction == "regression" else f.direction
            lines.append(
                f"  verdict flip: loop {f.site} {f.before} -> {f.after}  [{tag}]"
            )
        for site, side in (
            *((s, "a only") for s in self.loops_only_a),
            *((s, "b only") for s in self.loops_only_b),
        ):
            lines.append(f"  loop {site}: profiled in run {side}")
        if self.coverage is not None:
            c = self.coverage
            lines.append(
                f"  coverage: {c.base:.4g} -> {c.current:.4g} "
                f"[{c.status}: {c.reason}]"
            )
        lines.append(
            f"  metrics: {len(self.metrics)} changed, "
            f"{self.n_metrics_compared - len(self.metrics)} within noise band"
        )
        for m in self.metrics:
            lines.append(
                f"    {m.name:<44s} {m.base:.6g} -> {m.current:.6g}  ({m.reason})"
            )
        for sign, keys in (("+", self.suspect_added), ("-", self.suspect_removed)):
            for k in keys:
                lines.append(f"  suspect FP {sign} {k}")
        regs = self.regressions
        if regs:
            lines.append(f"  verdict: REGRESSED ({'; '.join(regs)})")
        elif self.identical:
            lines.append("  verdict: identical")
        else:
            lines.append("  verdict: OK (no regressions)")
        return "\n".join(lines) + "\n"


# -- bundle accessors ------------------------------------------------------


def _metric_values(bundle: dict[str, Any]) -> tuple[dict[str, float], dict[str, float]]:
    """Display-keyed counters and gauges of a bundle.

    Prefers the report (already display-formatted); partial bundles fall
    back to rebuilding names from the lossless ``metrics`` state dump.
    """
    report = bundle.get("report")
    if report:
        return dict(report.get("counters") or {}), dict(report.get("gauges") or {})
    from repro.obs.metrics import format_name

    state = bundle.get("metrics") or {}

    def rebuild(kind: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, labels, value in state.get(kind) or []:
            out[format_name(name, tuple(tuple(kv) for kv in labels))] = value
        return out

    return rebuild("counters"), rebuild("gauges")


def _verdicts(bundle: dict[str, Any]) -> dict[str, str | None]:
    return {
        row["site"]: row.get("verdict") for row in bundle.get("loops") or []
    }


def _suspects(bundle: dict[str, Any]) -> set[str]:
    prov = bundle.get("provenance") or {}
    return set(prov.get("suspect") or [])


def diff_bundles(
    a: dict[str, Any],
    b: dict[str, Any],
    *,
    tolerance: float | None = None,
    mad_factor: float = DEFAULT_MAD_FACTOR,
    strict: bool = False,
) -> RunDiff:
    """Classify the drift from bundle ``a`` (baseline) to bundle ``b``."""
    diff = RunDiff(
        run_a=a.get("run_id", "?"),
        run_b=b.get("run_id", "?"),
        meta_a=dict(a.get("meta") or {}),
        meta_b=dict(b.get("meta") or {}),
        strict=strict,
    )

    # -- dependence edges (keyed by source location) -----------------------
    deps_a = a.get("dependences")
    deps_b = b.get("dependences")
    if deps_a is not None and deps_b is not None:
        diff.digest_a = deps_a.get("digest")
        diff.digest_b = deps_b.get("digest")
        diff.n_edges_a = deps_a.get("n_edges")
        diff.n_edges_b = deps_b.get("n_edges")
        if diff.digest_a != diff.digest_b:
            by_key_a = {edge_key(e): e for e in deps_a.get("edges") or []}
            by_key_b = {edge_key(e): e for e in deps_b.get("edges") or []}
            diff.edges_added = [
                by_key_b[k] for k in sorted(by_key_b.keys() - by_key_a.keys())
            ]
            diff.edges_removed = [
                by_key_a[k] for k in sorted(by_key_a.keys() - by_key_b.keys())
            ]

    # -- loop verdict flips ------------------------------------------------
    va, vb = _verdicts(a), _verdicts(b)
    diff.loops_only_a = sorted(va.keys() - vb.keys())
    diff.loops_only_b = sorted(vb.keys() - va.keys())
    for site in sorted(va.keys() & vb.keys()):
        if va[site] != vb[site] and va[site] is not None and vb[site] is not None:
            diff.verdict_flips.append(VerdictFlip(site, va[site], vb[site]))

    # -- fast-path coverage (direction: higher is better) ------------------
    cov_a = (a.get("coverage") or {}).get("fastpath_coverage")
    cov_b = (b.get("coverage") or {}).get("fastpath_coverage")
    if cov_a is not None and cov_b is not None:
        status, why = classify_delta(
            cov_a, cov_b, direction="higher",
            tolerance=tolerance, mad_factor=mad_factor,
        )
        if status != "neutral":
            diff.coverage = MetricDelta(
                "producer.fastpath_coverage", cov_a, cov_b, status, why
            )

    # -- counters + gauges through the noise band --------------------------
    # Phase wall-times live in histograms/spans and are intentionally not
    # diffed: two identical runs must self-diff empty, and wall clocks
    # never replay.  Counters and gauges are deterministic per config.
    ca, ga = _metric_values(a)
    cb, gb = _metric_values(b)
    for base_map, cur_map in ((ca, cb), (ga, gb)):
        for name in sorted(base_map.keys() & cur_map.keys()):
            diff.n_metrics_compared += 1
            status, why = classify_delta(
                base_map[name], cur_map[name], direction=None,
                tolerance=tolerance, mad_factor=mad_factor,
            )
            if status != "neutral":
                diff.metrics.append(
                    MetricDelta(name, base_map[name], cur_map[name], status, why)
                )

    # -- suspect-FP provenance drift ---------------------------------------
    sa, sb = _suspects(a), _suspects(b)
    diff.suspect_added = sorted(sb - sa)
    diff.suspect_removed = sorted(sa - sb)
    return diff
