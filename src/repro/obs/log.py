"""Correlated structured logging — the third leg of the telemetry plane.

Metrics say *how much*, traces say *when*; logs say *what happened*.  A
:class:`StructLogger` writes one JSON object per line (``ts``, ``level``,
``event``, free-form fields) to any text stream, and every record carries
the same ``run_id`` that the :class:`~repro.obs.metrics.MetricsRegistry`
stamps on sink events, the :class:`~repro.obs.tracing.Tracer` carries into
Chrome trace exports, and :class:`~repro.obs.report.RunReport` embeds — so
one grep over metrics JSONL, trace JSON, and the log stream correlates a
whole run across files.

The hot-path contract mirrors the sink/tracer design: :data:`NULL_LOG`
(``enabled = False``) is the default everywhere, so instrumented code can
guard field construction::

    if registry.log.enabled:
        registry.log.info("worker.stalled", worker=w, age_seconds=age)

``run_id`` values come from :func:`new_run_id`: 12 hex chars of
``uuid4``, short enough for log lines, unique enough for a daemon serving
many concurrent jobs (the ROADMAP's profiling-as-a-service story).
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Any, TextIO

#: Level names in increasing severity; ``log(level=...)`` must use one.
LEVELS = ("debug", "info", "warning", "error")
_RANK = {name: i for i, name in enumerate(LEVELS)}


def new_run_id() -> str:
    """A fresh 12-hex-char correlation id for one profiling run."""
    return uuid.uuid4().hex[:12]


class NullLogger:
    """Disabled logger: ``enabled=False`` lets call sites skip everything.

    All record methods are safe no-ops, so library code may call them
    unconditionally; the ``enabled`` guard only saves building the field
    dict.
    """

    enabled = False
    run_id: str | None = None

    def log(self, level: str, event: str, **fields: Any) -> None:
        pass

    def debug(self, event: str, **fields: Any) -> None:
        pass

    def info(self, event: str, **fields: Any) -> None:
        pass

    def warning(self, event: str, **fields: Any) -> None:
        pass

    def error(self, event: str, **fields: Any) -> None:
        pass

    def bind(self, **fields: Any) -> "NullLogger":
        return self


#: Shared default instance — registries without a logger all point here.
NULL_LOG = NullLogger()


class StructLogger:
    """JSON-lines logger bound to one run.

    Each record is one sorted-key JSON object::

        {"event": "worker.stalled", "level": "warning",
         "run_id": "3fa9c12bd04e", "ts": 1754650000.123456, "worker": 2, ...}

    ``bind(**fields)`` returns a child logger sharing the stream and
    ``run_id`` but stamping extra constant fields (e.g. ``worker=3``) on
    every record — the cheap way to give a subsystem its own context.
    Writes are a single ``stream.write`` of one line, which is atomic
    enough under the GIL for the pipeline's threads.
    """

    enabled = True

    def __init__(
        self,
        stream: TextIO,
        run_id: str | None = None,
        level: str = "info",
        clock=time.time,
        _bound: dict[str, Any] | None = None,
    ) -> None:
        if level not in _RANK:
            raise ValueError(f"unknown log level {level!r}; pick from {LEVELS}")
        self.stream = stream
        self.run_id = run_id
        self.level = level
        self._min = _RANK[level]
        self._clock = clock
        self._bound = dict(_bound or {})
        self.n_records = 0

    def bind(self, **fields: Any) -> "StructLogger":
        """Child logger stamping ``fields`` on every record."""
        child = StructLogger(
            self.stream,
            run_id=self.run_id,
            level=self.level,
            clock=self._clock,
            _bound={**self._bound, **fields},
        )
        return child

    def log(self, level: str, event: str, **fields: Any) -> None:
        rank = _RANK.get(level)
        if rank is None:
            raise ValueError(f"unknown log level {level!r}; pick from {LEVELS}")
        if rank < self._min:
            return
        rec: dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "level": level,
            "event": event,
        }
        if self.run_id is not None:
            rec["run_id"] = self.run_id
        rec.update(self._bound)
        rec.update(fields)
        self.stream.write(
            json.dumps(rec, sort_keys=True, separators=(",", ":"), default=str)
            + "\n"
        )
        self.n_records += 1

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)
