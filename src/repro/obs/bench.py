"""Benchmark telemetry — structured BENCH records and noise-aware comparison.

The paper's entire evaluation (§VI) is measured slowdown, memory, and
accuracy; this module makes the reproduction's own performance a first-class
observable instead of free-form ``.txt`` dumps.  Three pieces:

* :class:`BenchRecorder` — what every benchmark module reports into.  One
  recorder per *suite* accumulates metric records (median + MAD over
  repeats, unit, direction, warmup policy, optional floor/ceiling bounds)
  plus the structured rows behind the curated text tables, under one
  environment fingerprint (see :mod:`repro.obs.environment`).  It writes
  the canonical ``BENCH_<suite>.json`` file and appends a flattened line to
  the append-only ``benchmarks/history.jsonl`` trajectory.
* :func:`compare` — the noise-aware regression gate.  Each metric shared by
  a baseline and a current record is classified ``improved`` / ``neutral``
  / ``regressed`` using a relative threshold *or* a MAD band, whichever is
  wider, with the metric's declared direction deciding which sign is good.
  Benchmarks that appear/disappear between runs classify as ``added`` /
  ``removed`` (never a crash); non-finite values classify ``invalid``;
  declared floors/ceilings are enforced on the current value regardless of
  the baseline.  ``ddprof bench compare`` and the CI gate are thin shells
  over this function.
* :func:`repeat_timed` — the shared repeat/warmup timing helper
  (``time.perf_counter`` only), so recorded medians are comparable across
  benchmark modules instead of each one hand-rolling best-of-N loops.

Schema (``ddprof.bench/1``)::

    {
      "schema": "ddprof.bench/1",
      "suite": "seq",
      "environment": {git_sha, cpus, platform, python, numpy, timestamp},
      "benchmarks": {
        "<id>": {"unit": ..., "direction": "higher"|"lower",
                  "value": <median>, "mad": ..., "samples": [...],
                  "repeats": ..., "warmup": ..., "tolerance": ...,
                  "floor": ...|null, "ceiling": ...|null, "meta": {...}},
        ...
      },
      "tables": {"<name>": {"title": ..., "headers": [...], "rows": [[...]]}},
      "artifacts": ["<name>", ...]
    }

See ``docs/benchmarks.md`` for the catalog and the gate's decision rules.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.errors import ObsError
from repro.obs.environment import environment_fingerprint

SCHEMA = "ddprof.bench/1"

#: Default relative noise tolerance.  Wall-clock metrics on shared CI
#: runners jitter by double-digit percents; per-metric ``tolerance=``
#: overrides tighten this for deterministic quantities.
DEFAULT_TOLERANCE = 0.25

#: MAD band multiplier: |delta| within ``mad_factor * (base.mad + cur.mad)``
#: is noise even when it exceeds the relative tolerance.
DEFAULT_MAD_FACTOR = 4.0

DIRECTIONS = ("higher", "lower")


def classify_delta(
    base_value: float,
    cur_value: float,
    *,
    direction: str | None = "lower",
    tolerance: float | None = None,
    mad_factor: float = DEFAULT_MAD_FACTOR,
    base_mad: float = 0.0,
    cur_mad: float = 0.0,
) -> tuple[str, str]:
    """The noise-band classification shared by :func:`compare` and the
    run-ledger diff (:mod:`repro.obs.rundiff`).

    A delta is *neutral* when it fits inside
    ``max(tolerance * |base|, mad_factor * (base_mad + cur_mad))`` — the
    wider of the relative threshold and the measured noise band.  Outside
    the band, ``direction`` decides the verdict: ``"higher"``/``"lower"``
    yield ``improved``/``regressed``; ``None`` (no preferred direction,
    e.g. a raw run-report counter) yields ``changed``.  Returns
    ``(status, reason)``.
    """
    tol = DEFAULT_TOLERANCE if tolerance is None else tolerance
    band = max(tol * abs(base_value), mad_factor * (base_mad + cur_mad))
    delta = cur_value - base_value
    if abs(delta) <= band:
        return "neutral", f"within band ±{band:.4g}"
    rel = delta / base_value if base_value else math.inf
    why = f"{rel:+.1%} vs band ±{band:.4g}"
    if direction not in DIRECTIONS:
        return "changed", why
    better = delta > 0 if direction == "higher" else delta < 0
    return ("improved" if better else "regressed"), why


def _median(xs: Sequence[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return float(s[mid]) if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def _mad(xs: Sequence[float], center: float) -> float:
    """Median absolute deviation around ``center`` (0.0 for < 2 samples)."""
    if len(xs) < 2:
        return 0.0
    return _median([abs(x - center) for x in xs])


def _jsonable(value: Any) -> Any:
    """Make numpy scalars / arrays JSON-serializable (tables carry them)."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class TimedSamples:
    """Result of :func:`repeat_timed`: per-repeat wall seconds plus each
    call's return value (so callers can derive throughputs or check
    outputs without re-running)."""

    seconds: list[float]
    results: list[Any]

    @property
    def median(self) -> float:
        return _median(self.seconds)

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def last(self) -> Any:
        return self.results[-1]


def repeat_timed(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> TimedSamples:
    """The shared repeat/warmup policy: call ``fn`` ``warmup`` times
    untimed, then ``repeats`` times under ``time.perf_counter``."""
    if repeats < 1:
        raise ObsError(f"repeat_timed needs repeats >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    seconds: list[float] = []
    results: list[Any] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        results.append(fn())
        seconds.append(time.perf_counter() - t0)
    return TimedSamples(seconds, results)


@dataclass
class MetricRecord:
    """One benchmark metric: a median over repeats plus its noise model."""

    id: str
    value: float
    unit: str = ""
    direction: str = "lower"
    mad: float = 0.0
    samples: list[float] = field(default_factory=list)
    repeats: int = 1
    warmup: int = 0
    tolerance: float | None = None
    floor: float | None = None
    ceiling: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.unit,
            "direction": self.direction,
            "value": _jsonable(self.value),
            "mad": _jsonable(self.mad),
            "samples": _jsonable(self.samples),
            "repeats": self.repeats,
            "warmup": self.warmup,
            "tolerance": self.tolerance,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "meta": _jsonable(self.meta),
        }

    @classmethod
    def from_dict(cls, bench_id: str, d: dict[str, Any]) -> "MetricRecord":
        return cls(
            id=bench_id,
            value=d.get("value", float("nan")),
            unit=d.get("unit", ""),
            direction=d.get("direction", "lower"),
            mad=d.get("mad", 0.0),
            samples=list(d.get("samples") or []),
            repeats=d.get("repeats", 1),
            warmup=d.get("warmup", 0),
            tolerance=d.get("tolerance"),
            floor=d.get("floor"),
            ceiling=d.get("ceiling"),
            meta=dict(d.get("meta") or {}),
        )


class BenchRecorder:
    """Accumulates one suite's structured benchmark record.

    ``results_dir`` (optional) is where curated text renderings land —
    :meth:`table` and :meth:`text` write there *and* keep the structured
    rows in the record, so the checked-in tables are a rendering of the
    JSON, not a second source of truth.
    """

    def __init__(
        self,
        suite: str,
        *,
        environment: dict[str, Any] | None = None,
        results_dir: Path | str | None = None,
        echo: bool = False,
    ) -> None:
        if not suite or any(c in suite for c in "/\\ "):
            raise ObsError(f"invalid bench suite name: {suite!r}")
        self.suite = suite
        self.environment = (
            dict(environment) if environment is not None else environment_fingerprint()
        )
        self.results_dir = Path(results_dir) if results_dir else None
        self.echo = echo
        self.metrics: dict[str, MetricRecord] = {}
        self.tables: dict[str, dict[str, Any]] = {}
        self.artifacts: list[str] = []

    # -- recording ------------------------------------------------------------
    def record(
        self,
        bench_id: str,
        value: float | None = None,
        *,
        samples: Sequence[float] | None = None,
        unit: str = "",
        direction: str = "lower",
        warmup: int = 0,
        tolerance: float | None = None,
        floor: float | None = None,
        ceiling: float | None = None,
        **meta: Any,
    ) -> MetricRecord:
        """Record one metric: either a scalar ``value`` or ``samples``
        (median + MAD are computed here — the canonical aggregation)."""
        if direction not in DIRECTIONS:
            raise ObsError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        if (value is None) == (samples is None):
            raise ObsError(
                f"record({bench_id!r}) needs exactly one of value= or samples="
            )
        if bench_id in self.metrics:
            raise ObsError(f"duplicate bench id {bench_id!r} in suite {self.suite!r}")
        if samples is not None:
            if not len(samples):
                raise ObsError(f"record({bench_id!r}): empty samples")
            xs = [float(x) for x in samples]
            med = _median(xs)
            rec = MetricRecord(
                id=bench_id, value=med, mad=_mad(xs, med), samples=xs,
                repeats=len(xs), unit=unit, direction=direction, warmup=warmup,
                tolerance=tolerance, floor=floor, ceiling=ceiling, meta=meta,
            )
        else:
            rec = MetricRecord(
                id=bench_id, value=float(value), unit=unit, direction=direction,
                warmup=warmup, tolerance=tolerance, floor=floor, ceiling=ceiling,
                meta=meta,
            )
        self.metrics[bench_id] = rec
        return rec

    def measure(
        self,
        bench_id: str,
        fn: Callable[[], Any],
        *,
        repeats: int = 3,
        warmup: int = 1,
        unit: str = "seconds",
        direction: str = "lower",
        **kwargs: Any,
    ) -> tuple[MetricRecord, TimedSamples]:
        """Time ``fn`` under the shared repeat/warmup policy and record the
        per-repeat seconds as this metric's samples."""
        timed = repeat_timed(fn, repeats=repeats, warmup=warmup)
        rec = self.record(
            bench_id, samples=timed.seconds, unit=unit, direction=direction,
            warmup=warmup, **kwargs,
        )
        return rec, timed

    def record_run_report(self, report: Any, prefix: str) -> list[MetricRecord]:
        """Fold a :class:`~repro.obs.report.RunReport`'s pipeline health
        numbers (producer fast-path share, queue stalls, load imbalance)
        into this suite so they ride the same regression gate."""
        out: list[MetricRecord] = []
        producer = report.producer_summary()
        if producer is not None and producer["events_total"]:
            out.append(
                self.record(
                    f"{prefix}.producer_fastpath_fraction",
                    producer["fastpath_fraction"],
                    unit="fraction", direction="higher", tolerance=0.02,
                )
            )
        if report.parallel:
            pa = report.parallel
            out.append(
                self.record(
                    f"{prefix}.queue_stalls",
                    pa["push_stalls"] + pa["pop_stalls"],
                    unit="stalls", direction="lower",
                )
            )
            out.append(
                self.record(
                    f"{prefix}.access_imbalance",
                    pa["access_imbalance"],
                    unit="max/mean", direction="lower", tolerance=0.05,
                )
            )
        return out

    # -- curated renderings ---------------------------------------------------
    def _write_artifact(self, name: str, text: str) -> Path | None:
        if self.echo:
            print(f"\n=== {name} ===\n{text}")
        if self.results_dir is None:
            return None
        self.results_dir.mkdir(exist_ok=True)
        path = self.results_dir / name
        path.write_text(text)
        return path

    def table(
        self,
        name: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
        *,
        title: str | None = None,
        csv: bool = False,
    ) -> None:
        """Keep a table's structured rows and render the curated ``.txt``
        (and optional ``.csv``) from them."""
        from repro.report import ascii_table, csv_lines

        self.tables[name] = {
            "title": title,
            "headers": list(headers),
            "rows": [_jsonable(list(r)) for r in rows],
        }
        self._write_artifact(f"{name}.txt", ascii_table(headers, rows, title=title))
        self.artifacts.append(f"{name}.txt")
        if csv:
            self._write_artifact(f"{name}.csv", csv_lines(headers, rows))
            self.artifacts.append(f"{name}.csv")

    def text(self, name: str, text: str) -> None:
        """Free-form curated artifact (matrices, bar charts) — rendered
        output only; its name is kept in the record for traceability."""
        self._write_artifact(name, text)
        self.artifacts.append(name)

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "environment": self.environment,
            "benchmarks": {k: m.to_dict() for k, m in sorted(self.metrics.items())},
            "tables": self.tables,
            "artifacts": self.artifacts,
        }

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def append_history(self, path: Path | str) -> None:
        """One flattened line per suite-run in the append-only trajectory."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = {
            "schema": SCHEMA,
            "suite": self.suite,
            "environment": self.environment,
            "metrics": {k: _jsonable(m.value) for k, m in sorted(self.metrics.items())},
        }
        with path.open("a") as f:
            f.write(json.dumps(line, sort_keys=True) + "\n")


def load_bench(source: Path | str | dict[str, Any]) -> dict[str, Any]:
    """Load and validate one ``BENCH_<suite>.json`` document."""
    if isinstance(source, dict):
        doc = source
        where = "<dict>"
    else:
        where = str(source)
        try:
            doc = json.loads(Path(source).read_text())
        except FileNotFoundError:
            raise ObsError(f"bench record not found: {where}") from None
        except json.JSONDecodeError as e:
            raise ObsError(f"bench record {where} is not valid JSON: {e}") from None
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ObsError(
            f"bench record {where}: schema "
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!s}"
            f" does not match {SCHEMA!r} — regenerate the baseline with this "
            f"version of ddprof"
        )
    return doc


def _records_of(source: Any) -> tuple[dict[str, MetricRecord], dict[str, Any]]:
    if isinstance(source, BenchRecorder):
        return dict(source.metrics), source.environment
    doc = load_bench(source)
    recs = {
        k: MetricRecord.from_dict(k, d)
        for k, d in (doc.get("benchmarks") or {}).items()
    }
    return recs, doc.get("environment", {})


@dataclass
class MetricComparison:
    """Verdict for one metric: baseline vs current."""

    id: str
    status: str  # improved | neutral | regressed | added | removed | invalid
    reason: str
    base: float | None = None
    current: float | None = None
    unit: str = ""
    direction: str = "lower"

    @property
    def ratio(self) -> float | None:
        if self.base is None or self.current is None or not self.base:
            return None
        return self.current / self.base


@dataclass
class BenchComparison:
    """All metric verdicts for one suite pair, plus the two environments."""

    suite: str
    results: list[MetricComparison]
    baseline_env: dict[str, Any] = field(default_factory=dict)
    current_env: dict[str, Any] = field(default_factory=dict)

    def of_status(self, status: str) -> list[MetricComparison]:
        return [r for r in self.results if r.status == status]

    @property
    def regressions(self) -> list[MetricComparison]:
        return [r for r in self.results if r.status in ("regressed", "invalid")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "ddprof.bench-compare/1",
            "suite": self.suite,
            "ok": self.ok,
            "baseline_env": self.baseline_env,
            "current_env": self.current_env,
            "results": [
                {
                    "id": r.id,
                    "status": r.status,
                    "reason": r.reason,
                    "base": _jsonable(r.base),
                    "current": _jsonable(r.current),
                    "ratio": _jsonable(r.ratio),
                    "unit": r.unit,
                    "direction": r.direction,
                }
                for r in self.results
            ],
        }

    def render(self) -> str:
        from repro.report import ascii_table

        rows = []
        for r in sorted(self.results, key=lambda r: (r.status != "regressed", r.id)):
            rows.append(
                [
                    r.id,
                    "-" if r.base is None else r.base,
                    "-" if r.current is None else r.current,
                    "-" if r.ratio is None else f"{r.ratio:.3f}x",
                    r.unit,
                    r.status.upper() if r.status in ("regressed", "invalid") else r.status,
                    r.reason,
                ]
            )
        counts = {}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        verdict = "OK" if self.ok else "REGRESSED"
        table = ascii_table(
            ["benchmark", "baseline", "current", "ratio", "unit", "status", "why"],
            rows,
            title=f"bench compare [{self.suite}] — {verdict} ({summary})",
        )
        env_note = ""
        b_sha = self.baseline_env.get("git_sha")
        c_sha = self.current_env.get("git_sha")
        if b_sha and c_sha:
            env_note = f"baseline {b_sha[:12]} -> current {c_sha[:12]}\n"
        return table + env_note


def _bounds_violation(rec: MetricRecord, base: MetricRecord | None) -> str | None:
    floor = rec.floor if rec.floor is not None else (base.floor if base else None)
    ceiling = rec.ceiling if rec.ceiling is not None else (
        base.ceiling if base else None
    )
    if floor is not None and rec.value < floor:
        return f"value {rec.value:.4g} below declared floor {floor:.4g}"
    if ceiling is not None and rec.value > ceiling:
        return f"value {rec.value:.4g} above declared ceiling {ceiling:.4g}"
    return None


def compare(
    baseline: Any,
    current: Any,
    *,
    tolerance: float | None = None,
    mad_factor: float = DEFAULT_MAD_FACTOR,
    suite: str | None = None,
) -> BenchComparison:
    """Noise-aware comparison of two bench records.

    ``baseline`` / ``current`` accept a path, a loaded dict, or a
    :class:`BenchRecorder`.  A metric is *neutral* when ``|current - base|``
    fits inside ``max(tol * |base|, mad_factor * (base.mad + cur.mad))`` —
    the wider of the relative threshold and the measured noise band — and
    *improved* / *regressed* by its declared direction otherwise.
    """
    base_recs, base_env = _records_of(baseline)
    cur_recs, cur_env = _records_of(current)
    if suite is None:
        for src in (current, baseline):
            if isinstance(src, BenchRecorder):
                suite = src.suite
                break
        else:
            doc = load_bench(current) if not isinstance(current, dict) else current
            suite = doc.get("suite", "?")

    results: list[MetricComparison] = []
    for bench_id in sorted(set(base_recs) | set(cur_recs)):
        base = base_recs.get(bench_id)
        cur = cur_recs.get(bench_id)
        if cur is None:
            results.append(
                MetricComparison(
                    bench_id, "removed", "present in baseline only",
                    base=base.value, unit=base.unit, direction=base.direction,
                )
            )
            continue
        if not math.isfinite(cur.value):
            results.append(
                MetricComparison(
                    bench_id, "invalid", f"non-finite current value {cur.value}",
                    base=None if base is None else base.value,
                    current=cur.value, unit=cur.unit, direction=cur.direction,
                )
            )
            continue
        violation = _bounds_violation(cur, base)
        if violation is not None:
            results.append(
                MetricComparison(
                    bench_id, "regressed", violation,
                    base=None if base is None else base.value,
                    current=cur.value, unit=cur.unit, direction=cur.direction,
                )
            )
            continue
        if base is None or not math.isfinite(base.value):
            why = (
                "new benchmark"
                if base is None
                else f"non-finite baseline value {base.value}"
            )
            results.append(
                MetricComparison(
                    bench_id, "added", why, current=cur.value,
                    unit=cur.unit, direction=cur.direction,
                )
            )
            continue
        tol = tolerance
        if tol is None:
            tol = cur.tolerance if cur.tolerance is not None else base.tolerance
        status, why = classify_delta(
            base.value,
            cur.value,
            direction=cur.direction,
            tolerance=tol,
            mad_factor=mad_factor,
            base_mad=base.mad,
            cur_mad=cur.mad,
        )
        results.append(
            MetricComparison(
                bench_id, status, why, base=base.value, current=cur.value,
                unit=cur.unit, direction=cur.direction,
            )
        )
    return BenchComparison(
        suite=suite or "?", results=results,
        baseline_env=base_env, current_env=cur_env,
    )


class BenchSession:
    """One benchmark run's recorders, flushed together.

    The conftest owns one per pytest session; ``ddprof bench run`` owns one
    per invocation.  All recorders share a single injected timestamp and
    git SHA, write ``BENCH_<suite>.json`` into ``out_dir`` and append to
    ``history_path`` on :meth:`finish`.
    """

    def __init__(
        self,
        out_dir: Path | str,
        *,
        results_dir: Path | str | None = None,
        history_path: Path | str | None = None,
        timestamp: str | None = None,
        sha: str | None = None,
        echo: bool = False,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.results_dir = Path(results_dir) if results_dir else None
        self.history_path = Path(history_path) if history_path else None
        self.environment = environment_fingerprint(timestamp=timestamp, sha=sha)
        self.echo = echo
        self._recorders: dict[str, BenchRecorder] = {}

    def recorder(self, suite: str) -> BenchRecorder:
        if suite not in self._recorders:
            self._recorders[suite] = BenchRecorder(
                suite,
                environment=self.environment,
                results_dir=self.results_dir,
                echo=self.echo,
            )
        return self._recorders[suite]

    @property
    def suites(self) -> list[str]:
        return sorted(self._recorders)

    def finish(self) -> list[Path]:
        """Write every suite's ``BENCH_<suite>.json`` + history line."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for suite in self.suites:
            rec = self._recorders[suite]
            if not rec.metrics and not rec.tables and not rec.artifacts:
                continue
            written.append(rec.write(self.out_dir / f"BENCH_{suite}.json"))
            if self.history_path is not None:
                rec.append_history(self.history_path)
        return written
