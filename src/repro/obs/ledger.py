"""The run ledger — persisted, self-describing bundles of profiling runs.

Every profiling run can leave behind one schema-versioned JSON bundle
(``ddprof.run-bundle/1``) under a ledger directory, one subdirectory per
``run_id``.  The bundle is the run's durable observable surface: the full
:class:`~repro.obs.report.RunReport` document, a canonical dependence-set
digest (sorted edge tuples keyed by *source location*, so trace order and
timestamps never perturb it), the per-loop parallelism verdicts, the
registry's lossless :meth:`~repro.obs.metrics.MetricsRegistry.state`,
the heatmap/occupancy summary, the rebalance audit trail, the suspect-FP
provenance roll-up, and the environment fingerprint shared with
``BENCH_*.json`` records.

Bundles are written *atomically* (tmp file + ``rename``, the same commit
idiom as the spill tier's ``meta.json``) on both the success path and the
crash-``finally`` paths of the engine and the CLI, so a reader never
observes torn JSON — a crashed run leaves a valid ``status: "partial"`` or
``status: "crashed"`` bundle instead of garbage.

Layout::

    <ledger>/<run_id>/bundle.json

The ledger dir defaults to ``~/.ddprof/runs`` (``DDPROF_LEDGER`` env
override; ``--ledger DIR`` per run).  :func:`gc_ledger` prunes it LRU
(oldest bundle mtime first), the same eviction discipline as the on-disk
trace cache.  :mod:`repro.obs.rundiff` consumes two bundles and reports
dependence/verdict/metric drift between them.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.common.errors import ObsError
from repro.obs.environment import environment_fingerprint
from repro.obs.heatmap import heatmap_summary
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from repro.core.result import ProfileResult
    from repro.obs.report import RunReport

SCHEMA = "ddprof.run-bundle/1"

#: The one file a run writes inside its ledger subdirectory.
BUNDLE_NAME = "bundle.json"

#: Parallelism ordering of the four-way loop verdict; a flip toward a
#: lower rank is a regression (see :mod:`repro.obs.rundiff`).
VERDICT_RANK = {"sequential": 0, "pipeline": 1, "reduction": 2, "doall": 3}


def default_ledger_dir() -> Path:
    """``DDPROF_LEDGER`` env override, else ``~/.ddprof/runs``."""
    env = os.environ.get("DDPROF_LEDGER")
    return Path(env) if env else Path.home() / ".ddprof" / "runs"


def validate_run_id(run_id: str) -> str:
    """A run id must be a single safe path component (it names the bundle
    directory); reject separators, traversal, and empties."""
    if not run_id:
        raise ObsError("run id must not be empty")
    if run_id in (".", ".."):
        raise ObsError(f"run id {run_id!r} is a reserved path component")
    bad = set("/\\\x00") | ({os.sep, os.altsep} - {None})
    if any(c in run_id for c in bad if c):
        raise ObsError(
            f"run id {run_id!r} must not contain path separators"
        )
    return run_id


def _jsonable(value: Any) -> Any:
    """Numpy scalars/arrays, sets, and tuples → JSON-ready values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


def _json_default(value: Any) -> Any:
    """``json.dumps`` fallback for the leaves ``_jsonable`` would rewrite."""
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def write_atomic(path: Path, doc: dict[str, Any]) -> Path:
    """Commit ``doc`` to ``path`` via tmp + rename (never torn JSON).

    Serialized compactly in a single C-speed pass (``default=`` hook for
    numpy scalars/arrays and sets) — bundle writes ride the profiling hot
    path's exit, so no pretty-printing and no full pre-walk.  Exotic
    documents (non-string mapping keys) fall back to the recursive
    ``_jsonable`` rewrite.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (path.name + ".tmp")
    try:
        payload = json.dumps(doc, separators=(",", ":"), default=_json_default)
    except TypeError:
        payload = json.dumps(_jsonable(doc), separators=(",", ":"))
    tmp.write_text(payload)
    tmp.rename(path)
    return path


# -- dependence canonicalization ------------------------------------------


def dependence_edges(result: "ProfileResult") -> list[dict[str, Any]]:
    """Canonical, deterministically-ordered edge list of a profile.

    Each edge is keyed by formatted *source locations* (``fileID:line|tid``)
    plus type, variable name, and the carried loop sites — never by trace
    row indices or timestamps — so two runs over the same program produce
    byte-identical edge lists regardless of pipeline scheduling.
    """
    from repro.common.sourceloc import format_location

    edges = []
    for dep in result.store.sorted_entries():
        edges.append(
            {
                "type": dep.dep_type.name,
                "source": f"{format_location(dep.source_loc)}|{dep.source_tid}",
                "sink": f"{format_location(dep.sink_loc)}|{dep.sink_tid}",
                "var": result.var_name(dep.var),
                "carried": sorted(format_location(s) for s in dep.carried),
                "race": bool(dep.race),
            }
        )
    return edges


def edge_key(edge: dict[str, Any]) -> tuple:
    """Identity of an edge for diffing (``race`` is a per-run annotation,
    not part of the dependence's identity)."""
    return (
        edge["type"],
        edge["source"],
        edge["sink"],
        edge["var"],
        tuple(edge.get("carried", ())),
    )


def dependence_digest(edges: list[dict[str, Any]]) -> str:
    """Stable content hash of the canonical edge list."""
    payload = json.dumps(
        [list(edge_key(e)) for e in edges],
        separators=(",", ":"),
        default=list,
    )
    return "sha256:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def loop_section(result: "ProfileResult") -> list[dict[str, Any]]:
    """Per-loop verdict rows (the ``ddprof loops --json`` row shape)."""
    from repro.analyses import loop_table

    return [
        {
            "site": r.site,
            "end": r.end,
            "executions": r.executions,
            "total_iterations": r.total_iterations,
            "mean_iterations": r.mean_iterations,
            "parallelizable": r.parallelizable,
            "verdict": r.verdict,
            "note": r.note,
        }
        for r in loop_table(result)
    ]


def _coverage_section(report: "RunReport | None") -> dict[str, Any] | None:
    if report is None:
        return None
    producer = report.producer_summary()
    if producer is None:
        return None
    return {
        "fastpath_coverage": producer["fastpath_coverage"],
        "events_fastpath": producer["events_fastpath"],
        "events_interpreted": producer["events_interpreted"],
    }


def _provenance_section(report: "RunReport | None") -> dict[str, Any] | None:
    rows = getattr(report, "provenance", None)
    if rows is None:
        return None
    suspect = sorted(
        f"{r['type']} {r['source_loc']}->{r['sink_loc']} var {r['var']}"
        for r in rows
        if r["provenance"]["suspect_fp"]
    )
    return {"n_records": len(rows), "n_suspect": len(suspect), "suspect": suspect}


# -- the writer ------------------------------------------------------------


class RunLedger:
    """One run's bundle writer.

    :meth:`checkpoint` writes a cheap partial bundle (metrics + environment
    only) and is safe to call from engine ``finally`` blocks mid-crash;
    :meth:`finalize` writes the full document and wins over any earlier
    checkpoint.  Both commit atomically.
    """

    def __init__(
        self,
        root: Path | str,
        run_id: str,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.root = Path(root)
        self.run_id = validate_run_id(run_id)
        self.meta = dict(meta or {})
        self.finalized = False

    @property
    def path(self) -> Path:
        return self.root / self.run_id / BUNDLE_NAME

    def _base_doc(self, registry: MetricsRegistry, status: str, error: str | None):
        return {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "status": status,
            "error": error,
            "meta": self.meta,
            "environment": environment_fingerprint(),
            "metrics": registry.state(),
        }

    def checkpoint(
        self,
        registry: MetricsRegistry,
        status: str = "partial",
        error: str | None = None,
    ) -> Path:
        """Crash-safe partial bundle: whatever telemetry exists right now.

        Never overwrites a finalized bundle (an engine ``finally`` running
        after the CLI already finalized must not regress the document).
        """
        if self.finalized:
            return self.path
        doc = self._base_doc(registry, status, error)
        doc.update(
            report=None,
            dependences=None,
            loops=None,
            coverage=None,
            heatmap=heatmap_summary(registry),
            rebalance_audit=[],
            provenance=None,
        )
        return write_atomic(self.path, doc)

    def finalize(
        self,
        registry: MetricsRegistry,
        report: "RunReport | None" = None,
        result: "ProfileResult | None" = None,
        info: Any = None,
        status: str = "ok",
        error: str | None = None,
    ) -> Path:
        """Write the full bundle; marks this ledger finalized."""
        doc = self._base_doc(registry, status, error)
        edges = dependence_edges(result) if result is not None else None
        doc.update(
            report=report.to_dict() if report is not None else None,
            dependences=(
                None
                if edges is None
                else {
                    "digest": dependence_digest(edges),
                    "n_edges": len(edges),
                    "edges": edges,
                }
            ),
            loops=loop_section(result) if result is not None else None,
            coverage=_coverage_section(report),
            heatmap=heatmap_summary(registry),
            rebalance_audit=(
                list(info.rebalance_audit)
                if info is not None and getattr(info, "rebalance_audit", None)
                else []
            ),
            provenance=_provenance_section(report),
        )
        path = write_atomic(self.path, doc)
        self.finalized = True
        return path


# -- readers ---------------------------------------------------------------


def load_bundle(ref: Path | str) -> dict[str, Any]:
    """Load and validate one bundle from a bundle file or a run directory."""
    p = Path(ref)
    if p.is_dir():
        p = p / BUNDLE_NAME
    if not p.is_file():
        raise ObsError(f"no run bundle at {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ObsError(f"corrupt run bundle {p}: {exc}") from exc
    if doc.get("schema") != SCHEMA:
        raise ObsError(
            f"{p}: schema {doc.get('schema')!r} is not {SCHEMA!r}"
        )
    return doc


def resolve_bundle(root: Path | str, ref: str) -> Path:
    """A diff operand: a run id under ``root``, or any bundle path."""
    candidate = Path(root) / ref / BUNDLE_NAME
    if candidate.is_file():
        return candidate
    p = Path(ref)
    if p.is_dir() and (p / BUNDLE_NAME).is_file():
        return p / BUNDLE_NAME
    if p.is_file():
        return p
    raise ObsError(
        f"run {ref!r} not found under ledger {root} (and not a bundle path)"
    )


def _entries(root: Path) -> list[tuple[float, int, Path]]:
    """(mtime, total bytes, run dir) per ledger entry, oldest first."""
    out = []
    if not root.is_dir():
        return out
    for d in root.iterdir():
        bundle = d / BUNDLE_NAME
        if not bundle.is_file():
            continue
        size = sum(f.stat().st_size for f in d.rglob("*") if f.is_file())
        out.append((bundle.stat().st_mtime, size, d))
    out.sort()
    return out


def list_runs(root: Path | str | None = None) -> list[dict[str, Any]]:
    """Summaries of every bundle under ``root``, newest first."""
    root = Path(root) if root is not None else default_ledger_dir()
    rows = []
    for mtime, size, d in reversed(_entries(root)):
        try:
            doc = load_bundle(d)
        except ObsError:
            continue
        meta = doc.get("meta") or {}
        deps = doc.get("dependences") or {}
        rows.append(
            {
                "run_id": doc.get("run_id", d.name),
                "status": doc.get("status", "?"),
                "workload": meta.get("workload"),
                "variant": meta.get("variant"),
                "engine": meta.get("engine"),
                "mode": meta.get("mode"),
                "n_edges": deps.get("n_edges"),
                "digest": deps.get("digest"),
                "bytes": size,
                "mtime": mtime,
            }
        )
    return rows


def gc_ledger(
    root: Path | str | None = None,
    limit_bytes: int | None = None,
    keep: int | None = None,
) -> list[str]:
    """LRU prune: evict oldest-mtime bundles until the ledger fits.

    Same discipline as the on-disk trace cache's
    :func:`~repro.workloads.base.enforce_cache_limit` — oldest bundle mtime
    first, until total size is under ``limit_bytes`` and at most ``keep``
    entries remain.  With neither bound this is a no-op.  Returns the
    removed run ids.
    """
    root = Path(root) if root is not None else default_ledger_dir()
    if limit_bytes is None and keep is None:
        return []
    entries = _entries(root)  # oldest first
    total = sum(size for _, size, _ in entries)
    count = len(entries)
    removed: list[str] = []
    for _, size, d in entries:
        over_bytes = limit_bytes is not None and total > limit_bytes
        over_count = keep is not None and count > keep
        if not over_bytes and not over_count:
            break
        shutil.rmtree(d, ignore_errors=True)
        total -= size
        count -= 1
        removed.append(d.name)
    return removed


def bundle_summary(doc: dict[str, Any]) -> str:
    """Terminal rendering of one bundle (``ddprof runs show``)."""
    meta = doc.get("meta") or {}
    head = " ".join(f"{k}={v}" for k, v in meta.items() if v is not None)
    lines = [f"run {doc.get('run_id')} [{doc.get('status')}]" + (f" {head}" if head else "")]
    if doc.get("error"):
        lines.append(f"  error: {doc['error']}")
    env = doc.get("environment") or {}
    if env:
        lines.append(
            f"  environment: {str(env.get('git_sha', 'unknown'))[:12]} on "
            f"{env.get('cpus', '?')} cpus, python {env.get('python', '?')}"
        )
    deps = doc.get("dependences")
    if deps:
        lines.append(
            f"  dependences: {deps['n_edges']} edges, digest {deps['digest']}"
        )
    loops = doc.get("loops")
    if loops:
        verdicts: dict[str, int] = {}
        for row in loops:
            v = row.get("verdict") or "-"
            verdicts[v] = verdicts.get(v, 0) + 1
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
        lines.append(f"  loops: {len(loops)} profiled ({pairs})")
        for row in loops:
            lines.append(
                f"    {row['site']:<8s} {row.get('verdict') or '-':<11s}"
                f" x{row['executions']} ({row['total_iterations']} iters)"
            )
    cov = doc.get("coverage")
    if cov:
        lines.append(
            f"  coverage: fastpath {cov['fastpath_coverage'] * 100:.1f}% "
            f"({cov['events_fastpath']} fast / "
            f"{cov['events_interpreted']} interpreted)"
        )
    prov = doc.get("provenance")
    if prov:
        lines.append(
            f"  provenance: {prov['n_records']} records, "
            f"{prov['n_suspect']} suspect FPs"
        )
    audit = doc.get("rebalance_audit")
    if audit:
        lines.append(f"  rebalance audit: {len(audit)} rounds")
    return "\n".join(lines) + "\n"
