"""Metric primitives and the registry.

Three instrument kinds, modelled on the Prometheus data model but kept
deliberately tiny so the profiler's hot paths can own them directly:

* :class:`Counter` — a monotonically increasing integer.  ``inc()`` is one
  attribute add; pipeline queues hold their stall counters as plain
  ``Counter`` objects, which makes the registry the *single* source of
  truth for stall accounting (no end-of-run re-summation of private
  fields).
* :class:`Gauge` — a point-in-time value, either set explicitly or backed
  by a callback evaluated at read time (``gauge_fn``), so e.g. signature
  occupancy is scraped from the live tracker instead of being mirrored.
* :class:`Histogram` — fixed upper-bound buckets plus sum/count; used for
  phase durations and per-chunk latencies.

Metrics are identified by ``(name, labels)``; ``registry.counter("x",
worker=3)`` returns the same object on every call.  A
:class:`MetricsRegistry` also times phases via :meth:`MetricsRegistry.span`
and forwards structured events to its sink (``NullSink`` by default — see
:mod:`repro.obs.sinks` for the zero-overhead contract).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.obs.log import NULL_LOG, NullLogger, StructLogger
from repro.obs.sinks import NULL_SINK, Sink
from repro.obs.tracing import MAIN_TRACK, NULL_TRACER, NullTracer, Tracer

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets (seconds): 1us .. 10s, log-ish spacing.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_name(name: str, labels: LabelKey) -> str:
    """Canonical display form: ``name{k="v",...}`` (sorted label keys)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic integer counter.  Free-standing construction is allowed so
    hot objects (queues) can be built before/without a registry."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({format_name(self.name, self.labels)}={self.value})"


class Gauge:
    """Point-in-time value; ``fn`` (if set) wins over the stored value."""

    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({format_name(self.name, self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram: cumulative-style export, O(buckets) observe."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] pairs with buckets[i]; counts[-1] is the +Inf overflow.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({format_name(self.name, self.labels)}"
            f" n={self.count} mean={self.mean:.6f})"
        )


class SpanRecord:
    """One completed phase timing."""

    __slots__ = ("name", "seconds", "attrs")

    def __init__(self, name: str, seconds: float, attrs: dict[str, Any]) -> None:
        self.name = name
        self.seconds = seconds
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"SpanRecord({self.name!r}, {self.seconds:.6f}s)"


class MetricsRegistry:
    """Get-or-create registry of counters/gauges/histograms + span timing.

    One registry per profiling run.  Instruments live for the registry's
    lifetime; ``snapshot()`` freezes every value into plain dicts for the
    run report, and ``emit()`` forwards structured events to the sink.
    """

    def __init__(
        self,
        sink: Sink | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        run_id: str | None = None,
        log: "StructLogger | NullLogger | None" = None,
    ) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        #: Timeline tracer; the shared ``NULL_TRACER`` by default, so the
        #: untraced hot path is one ``enabled`` check away from free.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Correlation id of this run; when set, every sink event is stamped
        #: with it (and the CLI propagates the same id into the tracer, the
        #: structured log, and the run report).
        self.run_id = run_id
        #: Structured logger; the shared ``NULL_LOG`` by default.
        self.log = log if log is not None else NULL_LOG
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self.spans: list[SpanRecord] = []

    # -- instrument factories (get-or-create) ---------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, Any]) -> Any:
        key = (name, _label_key(labels))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, key[1])
            self._metrics[key] = m
        elif type(m) is not cls:
            raise TypeError(
                f"metric {format_name(name, key[1])} already registered "
                f"as {type(m).__name__}, not {cls.__name__}"
            )
        return m

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> Gauge:
        g = self._get(Gauge, name, labels)
        g.fn = fn
        return g

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        m = self._metrics.get(key)
        if m is None:
            m = Histogram(name, key[1], buckets or DEFAULT_BUCKETS)
            self._metrics[key] = m
        elif not isinstance(m, Histogram):
            raise TypeError(
                f"metric {format_name(name, key[1])} already registered "
                f"as {type(m).__name__}, not Histogram"
            )
        return m

    # -- iteration / snapshot -------------------------------------------------
    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def counters(self) -> list[Counter]:
        return [m for m in self if isinstance(m, Counter)]

    def gauges(self) -> list[Gauge]:
        return [m for m in self if isinstance(m, Gauge)]

    def histograms(self) -> list[Histogram]:
        return [m for m in self if isinstance(m, Histogram)]

    def snapshot(self) -> dict[str, Any]:
        """Freeze every instrument into JSON-ready dicts."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for m in self:
            full = format_name(m.name, m.labels)
            if isinstance(m, Counter):
                counters[full] = m.value
            elif isinstance(m, Gauge):
                gauges[full] = m.value
            else:
                histograms[full] = m.snapshot()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def sum_counters(self, name: str) -> int:
        """Total of one counter family across all label sets."""
        return sum(m.value for m in self.counters() if m.name == name)

    # -- cross-process transfer ----------------------------------------------
    def state(self) -> dict[str, Any]:
        """Picklable value dump for shipping a child process's registry home.

        Unlike :meth:`snapshot` (display-formatted names), this keeps the
        structured ``(name, labels)`` identity of every instrument so
        :meth:`merge_state` can fold it into another registry losslessly.
        Callback gauges are evaluated at dump time and travel as plain
        values.
        """
        counters: list[tuple[str, LabelKey, int]] = []
        gauges: list[tuple[str, LabelKey, float]] = []
        histograms: list[tuple[str, LabelKey, tuple[float, ...], list[int], float, int]] = []
        for m in self:
            if isinstance(m, Counter):
                counters.append((m.name, m.labels, m.value))
            elif isinstance(m, Gauge):
                gauges.append((m.name, m.labels, m.value))
            else:
                histograms.append(
                    (m.name, m.labels, m.buckets, list(m.counts), m.sum, m.count)
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": [(s.name, s.seconds, s.attrs) for s in self.spans],
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a child registry's :meth:`state` into this registry.

        Counters add, gauges overwrite (last child wins — they are
        point-in-time values), histograms merge bucket-wise (bucket layouts
        must match), and spans are appended *without* re-feeding the
        ``span.seconds`` histogram: the child already recorded its own
        histogram samples, which arrive via the histogram merge.
        """
        for name, labels, value in state["counters"]:
            self._get(Counter, name, dict(labels)).inc(value)
        for name, labels, value in state["gauges"]:
            self._get(Gauge, name, dict(labels)).set(value)
        for name, labels, buckets, counts, total, count in state["histograms"]:
            h = self.histogram(name, buckets=buckets, **dict(labels))
            if h.buckets != tuple(buckets):
                raise ValueError(
                    f"histogram {format_name(name, _label_key(dict(labels)))}: "
                    "bucket layout mismatch on merge"
                )
            for i, c in enumerate(counts):
                h.counts[i] += c
            h.sum += total
            h.count += count
        for name, seconds, attrs in state["spans"]:
            self.spans.append(SpanRecord(name, seconds, dict(attrs)))

    # -- spans ----------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a pipeline phase; records a histogram sample + sink event."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.spans.append(SpanRecord(name, dt, attrs))
            self.histogram("span.seconds", phase=name).observe(dt)
            if self.tracer.enabled:
                self.tracer.complete(name, MAIN_TRACK, t0, t0 + dt, **attrs)
            if self.sink.enabled:
                self.emit({"type": "span", "phase": name, "seconds": dt, **attrs})

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregate of recorded spans: total seconds + count."""
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            agg = out.setdefault(s.name, {"seconds": 0.0, "count": 0})
            agg["seconds"] += s.seconds
            agg["count"] += 1
        return out

    # -- events ---------------------------------------------------------------
    def emit(self, event: dict[str, Any]) -> None:
        """Forward one structured event to the sink (stamped with ``ts``)."""
        if not self.sink.enabled:
            return
        if "ts" not in event:
            event["ts"] = round(time.time(), 6)
        if self.run_id is not None and "run_id" not in event:
            event["run_id"] = self.run_id
        self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()
