"""Figure 5 — profiling slowdowns for sequential NAS + Starbench targets.

Paper (per benchmark + suite averages): serial ~190x/191x; 8T lock-based
above 8T lock-free by 1.3–1.6x; 8T lock-free ~97x/101x; 16T lock-free
~78x/93x; kMeans, rgbyuv, rotate, bodytrack, h264dec scale worst (access
imbalance).

Ours: each workload's trace is pushed through the *real* pipeline
(deterministic mode) per configuration; the measured chunk sequence and
load distribution drive the calibrated cost-model replay (DESIGN.md's
timing substitution).  pytest-benchmark times the real pipeline run of a
representative workload.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import estimate_parallel, estimate_serial
from repro.parallel import ParallelProfiler
from repro.report import bar_chart
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)

CONFIGS = {
    "8T_lock-based": dict(workers=8, lock_free_queues=False),
    "8T_lock-free": dict(workers=8, lock_free_queues=True),
    "16T_lock-free": dict(workers=16, lock_free_queues=True),
}


def pipeline_slowdown(batch, mt_target=False, **cfg_kwargs):
    cfg = PERFECT.with_(
        chunk_size=256, rebalance_interval_chunks=50, **cfg_kwargs
    )
    result, info = ParallelProfiler(cfg, window=4096).profile(batch)
    est = estimate_parallel(
        info,
        result.stats.n_accesses,
        len(result.store),
        lock_free=cfg.lock_free_queues,
        queue_depth=cfg.queue_depth,
        mt_target=mt_target,
    )
    return est.slowdown, info


@pytest.fixture(scope="module")
def fig5(all_seq_names):
    rows = []
    imbalance = {}
    for name in all_seq_names:
        batch = get_trace(name)
        cells = [
            name,
            estimate_serial(
                batch.n_accesses,
                n_control_events=len(batch) - batch.n_accesses,
            ),
        ]
        for label, kw in CONFIGS.items():
            s, info = pipeline_slowdown(batch, **kw)
            cells.append(s)
            if label == "8T_lock-free":
                imbalance[name] = info.access_imbalance
        rows.append(cells)
    return rows, imbalance


HEADERS = ["program", "serial", *CONFIGS.keys()]


def _avg(rows, col):
    return sum(r[col] for r in rows) / len(rows)


def test_fig5_slowdowns(benchmark, fig5, bench_record, nas_names):
    rows, imbalance = fig5
    nas_rows = [r for r in rows if r[0] in nas_names]
    sb_rows = [r for r in rows if r[0] not in nas_names]
    summary = rows + [
        ["NAS-average", *(_avg(nas_rows, c) for c in range(1, 5))],
        ["Starbench-average", *(_avg(sb_rows, c) for c in range(1, 5))],
    ]
    bench_record.table(
        "fig5_slowdown_sequential", HEADERS, summary,
        title="Figure 5 analog (x slowdown)", csv=True,
    )
    bench_record.text(
        "fig5_chart_16T.txt",
        bar_chart([(r[0], r[4]) for r in rows], title="16T lock-free slowdown", unit="x"),
    )
    for label, rws in (("nas", nas_rows), ("starbench", sb_rows)):
        bench_record.record(
            f"fig5.{label}_serial_slowdown", _avg(rws, 1), unit="x",
            direction="lower", tolerance=0.05,
        )
        bench_record.record(
            f"fig5.{label}_16T_lockfree_slowdown", _avg(rws, 4), unit="x",
            direction="lower", tolerance=0.05,
        )

    for label, rws in (("NAS", nas_rows), ("Starbench", sb_rows)):
        serial = _avg(rws, 1)
        lockb8 = _avg(rws, 2)
        lockf8 = _avg(rws, 3)
        lockf16 = _avg(rws, 4)
        # Shape 1: ordering serial > lock-based 8T > lock-free 8T > 16T.
        assert serial > lockb8 > lockf8 > lockf16, label
        # Shape 2: serial sits near the paper's ~190x anchor.
        assert 170 <= serial <= 210, label
        # Shape 3: overall speedup of 16T lock-free vs serial ~2.1-2.4x,
        # sub-linear in 16 workers.
        assert 1.6 <= serial / lockf16 <= 3.2, label
        # Shape 4: lock-free buys 1.2-1.7x over lock-based at 8 workers.
        assert 1.2 <= lockb8 / lockf8 <= 1.7, label

    # Shape 5: the imbalanced benchmarks scale worst (paper names kMeans,
    # rgbyuv, rotate, bodytrack, h264dec).  Check that the three highest
    # 8T slowdowns belong to the three highest access imbalances.
    by_slowdown = sorted(rows, key=lambda r: -r[3])[:3]
    worst_imb = sorted(imbalance, key=lambda n: -imbalance[n])[:6]
    for r in by_slowdown:
        assert r[0] in worst_imb, (r[0], worst_imb)

    # Timed kernel: a real 8-worker pipeline run (also recorded, so the
    # pipeline's wall-clock cost has a trajectory of its own).
    batch = get_trace("mg")
    bench_record.measure(
        "fig5.mg_pipeline_8T_seconds",
        lambda: pipeline_slowdown(batch, workers=8),
        repeats=3, warmup=1,
    )
    benchmark.pedantic(
        lambda: pipeline_slowdown(batch, workers=8), rounds=3, iterations=1
    )


def test_fig5_every_benchmark_parallel_profiling_wins(benchmark, fig5):
    """No benchmark regresses: parallel profiling beats serial everywhere."""
    rows, _ = fig5
    for r in rows:
        assert r[1] > r[3], f"{r[0]}: serial {r[1]} <= 8T lock-free {r[3]}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
