"""Scale — amplified spilled traces at 10⁶/10⁷ events, flat-RAM throughput.

The paper's profiler handles multi-hundred-million-event traces because its
memory footprint is bounded by the signature configuration, not the trace
length.  This module encodes that property as gated metrics: the amplifier
tiles the bundled ``cg`` trace up to 10⁶ and 10⁷ memory events, the spill
tier streams both through the processes pipeline, and we record

* ``scale.events_per_sec_1e6`` / ``scale.events_per_sec_1e7`` — end-to-end
  profiling throughput (floor-gated so a pipeline regression fails
  ``ddprof bench compare``), and
* ``scale.peak_rss_mb_1e6`` / ``scale.peak_rss_mb_1e7`` — the maximum
  per-worker peak RSS, ceiling-gated with the *same* ceiling at both sizes:
  a 10× longer trace must not move the memory bound.

Ground truth rides along for free: every tile of the amplified trace
reproduces the base trace's dependences on disjoint addresses, so the
merged dependence set must equal the base run's set exactly.
"""

import time

import pytest

from repro.common.config import ProfilerConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel.engine import ParallelProfiler
from repro.workloads import get_trace, strip_loops
from repro.workloads.amplify import amplify_cached

BASE = "cg"
SIZES = {"1e6": 1_000_000, "1e7": 10_000_000}

# Gates (enforced by ``ddprof bench compare`` on the *current* value):
# measured ~0.5-1.5 M events/s and ~60 MiB peak worker RSS depending on the
# host; the floor sits well below the slowest observation so only a real
# pipeline regression trips it, while the RSS ceiling is deliberately
# identical at both sizes — that equality *is* the flat-RAM claim.
EVENTS_PER_SEC_FLOOR = 200_000.0
PEAK_RSS_CEILING_MB = 256.0


def scale_config() -> ProfilerConfig:
    # The scale posture: lossy banked signatures (bounded state), large
    # chunks (amortised transport), processes mode (real isolation).
    return ProfilerConfig(
        workers=4,
        signature_slots=1 << 16,
        signature_banks=16,
        chunk_size=8192,
    )


@pytest.fixture(scope="module")
def spill_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("scale-spills")


@pytest.fixture(scope="module")
def base_stripped():
    return strip_loops(get_trace(BASE))


@pytest.fixture(scope="module", params=sorted(SIZES))
def scale_run(request, spill_cache, base_stripped):
    """Profile one amplified size in processes mode; share the measurement."""
    label = request.param
    target = SIZES[label]
    factor = -(-target // len(base_stripped))
    sp = amplify_cached(base_stripped, factor, spill_cache, f"amp-{BASE}")
    registry = MetricsRegistry()
    profiler = ParallelProfiler(scale_config(), mode="processes", registry=registry)
    start = time.perf_counter()
    result, info = profiler.profile(sp)
    elapsed = time.perf_counter() - start
    gauges = registry.snapshot()["gauges"]
    rss = [v for k, v in gauges.items() if k.startswith("process.peak_rss_bytes")]
    return {
        "label": label,
        "events": len(sp),
        "events_per_sec": len(sp) / elapsed,
        "peak_rss_mb": max(rss) / (1 << 20) if rss else 0.0,
        "n_deps": len(result.store.as_set()),
        "info": info,
    }


def test_scale_throughput_and_rss(scale_run, bench_record, benchmark):
    label = scale_run["label"]
    bench_record.record(
        f"scale.events_per_sec_{label}",
        scale_run["events_per_sec"],
        unit="events/s",
        direction="higher",
        tolerance=0.50,
        floor=EVENTS_PER_SEC_FLOOR,
        events=scale_run["events"],
        mode="processes",
    )
    bench_record.record(
        f"scale.peak_rss_mb_{label}",
        scale_run["peak_rss_mb"],
        unit="MB",
        direction="lower",
        tolerance=0.50,
        ceiling=PEAK_RSS_CEILING_MB,
        events=scale_run["events"],
        mode="processes",
    )
    assert scale_run["events"] >= SIZES[label]
    assert scale_run["peak_rss_mb"] > 0
    # A run that produced no dependences did not actually profile anything.
    assert scale_run["n_deps"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_scale_ground_truth_1e6(spill_cache, base_stripped):
    # Tiles are address-disjoint copies of the base trace, so the merged
    # dependence set collapses back to exactly the base set — but only
    # under a perfect signature (the lossy scale config conflates the
    # amplified address space by design).  Checked at 10⁶ events where the
    # perfect (exact-dict) signature is still affordable.
    factor = -(-SIZES["1e6"] // len(base_stripped))
    sp = amplify_cached(base_stripped, factor, spill_cache, f"amp-{BASE}")
    cfg = ProfilerConfig(workers=4, perfect_signature=True, signature_banks=16)
    amp_result, _ = ParallelProfiler(cfg, mode="processes").profile(sp)
    base_result, _ = ParallelProfiler(cfg, mode="processes").profile(base_stripped)
    assert amp_result.store.as_set() == base_result.store.as_set()
