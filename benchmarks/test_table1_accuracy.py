"""Table I — false positive/negative rates of profiled dependences.

Paper: for the 11 Starbench programs, FPR/FNR of the signature profiler
against a perfect signature at three slot counts (1e6 / 1e7 / 1e8 for
programs touching ~4e2–6.3e6 addresses).  Averages fall 24.47%/5.42% ->
4.71%/0.71% -> 0.35%/0.04%; the high-address programs (rgbyuv, rotate,
rot-cc, c-ray, bodytrack) dominate every column.

Ours: the same experiment with slot counts scaled to our address counts
(1e2–2.4e4 addresses), rates computed per dependence *instance* (the only
reading consistent with the paper's magnitudes — see
``repro.core.deps.instance_rates``).
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import instance_rates, profile_trace, set_rates
from repro.workloads import get_trace

SLOT_SIZES = (4_096, 65_536, 1_048_576)
PERFECT = ProfilerConfig(perfect_signature=True)


@pytest.fixture(scope="module")
def table1(starbench_names):
    rows = []
    for name in starbench_names:
        batch = get_trace(name)
        baseline = profile_trace(batch, PERFECT)
        cells = [name, batch.n_unique_addresses, batch.n_accesses, len(baseline.store)]
        for slots in SLOT_SIZES:
            reported = profile_trace(batch, ProfilerConfig(signature_slots=slots))
            r = instance_rates(reported.store, baseline.store)
            cells += [100 * r.fpr, 100 * r.fnr]
        rows.append(cells)
    avg = ["average", "", "", ""]
    for j in range(4, 4 + 2 * len(SLOT_SIZES)):
        avg.append(sum(r[j] for r in rows) / len(rows))
    rows.append(avg)
    return rows


HEADERS = ["program", "addresses", "accesses", "deps"] + [
    f"{kind}@{s}" for s in SLOT_SIZES for kind in ("FPR%", "FNR%")
]


def test_table1_accuracy(benchmark, table1, bench_record, starbench_names):
    bench_record.table(
        "table1_accuracy", HEADERS, table1, title="Table I analog", csv=True,
    )

    avg = table1[-1]
    fpr = {s: avg[4 + 2 * i] for i, s in enumerate(SLOT_SIZES)}
    fnr = {s: avg[5 + 2 * i] for i, s in enumerate(SLOT_SIZES)}
    for slots in SLOT_SIZES:
        bench_record.record(
            f"table1.avg_fpr_pct_{slots}", fpr[slots], unit="%",
            direction="lower", tolerance=0.0,
        )
        bench_record.record(
            f"table1.avg_fnr_pct_{slots}", fnr[slots], unit="%",
            direction="lower", tolerance=0.0,
        )

    # Shape 1: both rates fall monotonically with slot count.
    assert fpr[SLOT_SIZES[0]] > fpr[SLOT_SIZES[1]] > fpr[SLOT_SIZES[2]]
    assert fnr[SLOT_SIZES[0]] >= fnr[SLOT_SIZES[1]] >= fnr[SLOT_SIZES[2]]
    # Shape 2: the smallest signature is materially wrong, the largest
    # essentially exact (paper: 24.47% -> 0.35% FPR, 5.42% -> 0.04% FNR).
    assert fpr[SLOT_SIZES[0]] > 10.0
    assert fpr[SLOT_SIZES[2]] < 0.5
    assert fnr[SLOT_SIZES[2]] < 0.5
    # Shape 3: FNR never exceeds FPR on average.
    assert fnr[SLOT_SIZES[0]] <= fpr[SLOT_SIZES[0]]
    # Shape 4: address-hungry programs dominate the small-signature FPR
    # (paper: rgbyuv 47.67, rotate 55.92, rot-cc 63.15 vs md5 3.08).
    by_name = {r[0]: r for r in table1[:-1]}
    for heavy in ("rgbyuv", "rotate", "rot-cc"):
        for light in ("md5", "h264dec", "bodytrack"):
            assert by_name[heavy][4] > by_name[light][4], (heavy, light)

    # Timed kernel: one signature-mode profile of a mid-size program.
    batch = get_trace("tinyjpeg")
    cfg = ProfilerConfig(signature_slots=SLOT_SIZES[1])
    benchmark.pedantic(lambda: profile_trace(batch, cfg), rounds=3, iterations=1)


def test_record_level_rates_are_stricter(benchmark):
    """The record-level (set) comparison is an upper bound on how bad a
    collision can look: one fabricated record is 1/|set|, so rates sit far
    above the instance-level ones at small signatures."""
    batch = get_trace("rotate")
    base = profile_trace(batch, PERFECT)
    rep = profile_trace(batch, ProfilerConfig(signature_slots=SLOT_SIZES[0]))
    rec = set_rates(rep.store, base.store, with_carried=False)
    inst = instance_rates(rep.store, base.store)
    assert rec.fpr > 0 and inst.fpr > 0
    benchmark.pedantic(
        lambda: instance_rates(rep.store, base.store), rounds=3, iterations=1
    )


def test_perfect_signature_self_agreement(benchmark):
    """Sanity anchor: the perfect signature against itself is exactly 0/0
    (the baseline definition of Section VI-A)."""
    batch = get_trace("streamcluster")
    a = profile_trace(batch, PERFECT)
    b = profile_trace(batch, PERFECT)
    r = instance_rates(a.store, b.store)
    assert r.fpr == 0.0 and r.fnr == 0.0
    benchmark.pedantic(lambda: profile_trace(batch, PERFECT), rounds=3, iterations=1)
