"""Section III-B — chained hash table vs. signature, time overhead.

Paper: storing access history in a bucket-chained hash table (exact, but
chains must be searched on every access) measured 1.5–3.7x slower than the
signature's single-probe scheme.

Ours: replay a real workload's access stream directly against both tracker
kinds (lookup + insert per access — exactly what Algorithm 1 asks of them)
and compare wall-clock.  Measuring the trackers directly mirrors the
paper's setting, where the tracker operation dominates the instrumented
run; inside our interpreter-based engine it would be diluted by
interpretation overhead.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import repeat_timed
from repro.sigmem import ArraySignature, ChainedHashTable
from repro.sigmem.signature import AccessRecord
from repro.workloads import get_trace


def replay(tracker, addrs, writes):
    rec = AccessRecord(1, 0, 0, 0)
    lookup = tracker.lookup
    insert = tracker.insert
    for a, w in zip(addrs, writes):
        lookup(a)
        if w:
            insert(a, rec)


def replay_seconds(make_tracker, addrs, writes, repeats=5):
    """Best-of-N replay wall-clock under the shared repeat policy (a fresh
    tracker per repeat — refilling a warm one would shorten chains)."""
    timed = repeat_timed(
        lambda: replay(make_tracker(), addrs, writes), repeats=repeats, warmup=1
    )
    return timed.best


@pytest.fixture(scope="module")
def stream():
    batch = get_trace("streamcluster")  # few addresses, many accesses
    mask = batch.access_mask()
    addrs = [int(a) for a in batch.addr[mask]]
    writes = [bool(w) for w in (batch.kind[mask] == 1)]
    return addrs, writes, batch.n_unique_addresses


def test_signature_faster_than_hashtable(benchmark, stream, bench_record):
    addrs, writes, n_addr = stream
    rows = []
    for buckets in (max(n_addr // 8, 16), max(n_addr // 2, 64), 4 * n_addr):
        t_sig = replay_seconds(lambda: ArraySignature(4 * n_addr), addrs, writes)
        t_ht = replay_seconds(lambda: ChainedHashTable(buckets), addrs, writes)
        rows.append((buckets, t_ht / t_sig))
    bench_record.table(
        "hashtable_vs_signature", ["buckets", "slowdown_vs_signature"], rows,
        csv=True,
    )
    bench_record.record(
        "hashtable.heavy_chaining_slowdown", rows[0][1], unit="x",
        direction="higher", floor=1.4,
    )
    # Shape 1: the hash table never beats the signature.
    assert all(r > 1.0 for _, r in rows), rows
    # Shape 2: the penalty grows as chains lengthen (fewer buckets).
    assert rows[0][1] > rows[-1][1], rows
    # Shape 3: at heavy chaining the gap reaches the paper's 1.5–3.7x band
    # (threshold set just below the band to absorb interpreter timing noise).
    assert rows[0][1] > 1.4, rows

    benchmark.pedantic(
        lambda: replay(ArraySignature(4 * n_addr), addrs, writes),
        rounds=3,
        iterations=1,
    )


def test_hashtable_is_exact_despite_cost(benchmark, stream):
    """The table's one advantage: exactness.  Its dependence set equals the
    perfect signature's — the signature trades that for speed and bounded
    memory (Section III-B's argument in full)."""
    from repro.core import profile_trace
    from repro.core.reference import ReferenceEngine

    batch = get_trace("streamcluster")
    n_addr = batch.n_unique_addresses
    cfg = ProfilerConfig(perfect_signature=True)
    ht_engine = ReferenceEngine(
        cfg, ChainedHashTable(max(n_addr // 2, 16)), ChainedHashTable(max(n_addr // 2, 16))
    )
    ht_engine.process(batch)
    perfect = profile_trace(batch, cfg)
    assert ht_engine.store == perfect.store
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
