"""Section IV-A — load balancing by hot-address redistribution.

Paper: addresses distribute evenly under the modulo map but access counts
do not; the profiler tracks per-address statistics, re-checks every 50 000
chunks, and keeps the ten hottest addresses spread over the workers —
at most ~20 redistribution rounds per benchmark, enough to help.

Ours: measured on the analog whose hot accumulators the paper calls out
(kmeans) plus a synthetic worst case; redistribution must trigger, improve
the hot-load balance, stay within the paper's round budget, and preserve
exactness (signature state migrates with the address).
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.parallel import ParallelProfiler

PERFECT = ProfilerConfig(perfect_signature=True)


def run(batch, rebalance: bool, workers=8):
    cfg = PERFECT.with_(
        workers=workers,
        chunk_size=64,
        rebalance_interval_chunks=10 if rebalance else 10**9,
    )
    return ParallelProfiler(cfg, window=1024).profile(batch)


@pytest.fixture(scope="module")
def kmeans_runs():
    from repro.workloads import get_trace

    batch = get_trace("kmeans")
    on_res, on = run(batch, rebalance=True)
    off_res, off = run(batch, rebalance=False)
    return batch, (on_res, on), (off_res, off)


def test_rebalancing_kmeans(benchmark, kmeans_runs, bench_record):
    batch, (on_res, on), (off_res, off) = kmeans_runs
    rows = [
        ["rebalancing ON", on.rebalance_rounds, on.addresses_migrated,
         on.access_imbalance],
        ["rebalancing OFF", off.rebalance_rounds, off.addresses_migrated,
         off.access_imbalance],
    ]
    bench_record.table(
        "load_balancing", ["config", "rounds", "migrated", "max/mean load"],
        rows, title="Load balancing (kmeans analog, 8 workers)",
    )
    bench_record.record(
        "lb.kmeans_imbalance_rebalanced", on.access_imbalance, unit="ratio",
        direction="lower", ceiling=2.0,
    )
    bench_record.record(
        "lb.kmeans_rebalance_rounds", on.rebalance_rounds, unit="rounds",
        direction="lower", ceiling=20,
    )
    # Shape 1: the paper's round budget is respected.  kmeans' hot
    # accumulators are *contiguous* array elements, which the modulo map
    # already spreads across workers — so redistribution may legitimately
    # never trigger here (the synthetic-hotspot test exercises the trigger
    # path); when it does, it stays within ~20 rounds.
    assert on.rebalance_rounds <= 20
    # Shape 2: rebalancing never makes the access balance worse.
    assert on.access_imbalance <= off.access_imbalance * 1.05
    # Shape 3: the hot addresses end up evenly spread either way.
    assert on.access_imbalance < 2.0
    # Shape 4: results are identical with and without rebalancing —
    # migration moves signature state correctly.
    assert on_res.store == off_res.store
    from repro.workloads import get_trace

    batch = get_trace("kmeans")
    benchmark.pedantic(lambda: run(batch, True), rounds=1, iterations=1)


def test_rebalancing_synthetic_hotspot(benchmark, bench_record):
    """Worst case: a handful of same-worker addresses draw nearly all
    accesses; redistribution must spread the hot load close to even."""
    from tests.trace_helpers import seq_trace

    ops = []
    hot = [0x1000 + 0x100 * k for k in range(4)]  # all home to worker 0 of 8
    for r in range(500):
        for a in hot:
            ops.append(("w", a, 5, "h"))
            ops.append(("r", a, 6, "h"))
    for i in range(64):
        ops.append(("w", 0x9008 + 8 * i, 7, "c"))
    batch = seq_trace(ops)
    _, on = run(batch, rebalance=True, workers=4)
    _, off = run(batch, rebalance=False, workers=4)
    bench_record.record(
        "lb.hotspot_imbalance_improvement", off.access_imbalance / on.access_imbalance,
        unit="x", direction="higher", floor=1.0 / 0.6,
    )
    assert off.access_imbalance > 3.0  # pathological without balancing
    assert on.access_imbalance < off.access_imbalance * 0.6
    benchmark.pedantic(lambda: run(batch, True, workers=4), rounds=1, iterations=1)


def test_even_address_distribution_claim(benchmark):
    """Eq. 1's premise measured on a real trace: the modulo map spreads
    *addresses* evenly even when access counts are skewed."""
    import numpy as np

    from repro.parallel.address_map import AddressMap
    from repro.workloads import get_trace

    batch = get_trace("cg")
    addrs = np.unique(batch.addr[batch.access_mask()])
    amap = AddressMap(8)
    counts = np.bincount(amap.workers_of(addrs), minlength=8)
    assert counts.max() <= 1.25 * counts.mean()
    benchmark.pedantic(lambda: amap.workers_of(addrs), rounds=3, iterations=1)
