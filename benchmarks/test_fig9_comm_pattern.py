"""Figure 9 — communication pattern of splash2x.water-spatial (Section VII-B).

Paper: the producer/consumer matrix derived from the profiler's cross-thread
RAW dependences matches the simulator-based characterization of
Barrow-Williams et al. — for water-spatial, a strongly neighbour-banded
pattern — at a fraction of a simulator's >1000x cost.

Ours: the water-spatial analog's matrix must be banded (each worker
communicates with its spatial neighbours only), identical between the
signature and perfect profilers, and stable across interleavings.
"""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import communication_matrix, render_matrix
from repro.workloads import get_trace  # noqa: F401  (used by all tests)

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)
THREADS = 6


def worker_matrix(config, seed=0):
    batch = get_trace("water-spatial", variant="par", threads=THREADS, seed=seed)
    res = profile_trace(batch, config)
    m = communication_matrix(res, n_threads=THREADS + 1)
    return m[1:, 1:]  # drop the main thread


@pytest.fixture(scope="module")
def fig9():
    return worker_matrix(PERFECT_MT)


def band_split(m):
    band = off = 0.0
    for p in range(m.shape[0]):
        for c in range(m.shape[1]):
            if p == c:
                continue
            if abs(p - c) == 1:
                band += m[p, c]
            else:
                off += m[p, c]
    return band, off


def test_fig9_neighbor_banded_pattern(benchmark, fig9, bench_record):
    bench_record.text("fig9_comm_pattern.txt", render_matrix(fig9))
    band, off = band_split(fig9)
    # The banded-communication share is the figure's one-number summary:
    # 1.0 means every cross-thread byte flows between spatial neighbours.
    bench_record.record(
        "fig9.water_spatial_band_fraction", band / (band + off),
        unit="fraction", direction="higher", tolerance=0.0, floor=1.0,
    )
    # Shape: all cross-thread communication flows between spatial
    # neighbours; every adjacent pair communicates in both directions.
    assert band > 0
    assert off == 0
    for i in range(THREADS - 1):
        assert fig9[i, i + 1] > 0
        assert fig9[i + 1, i] > 0
    benchmark.pedantic(lambda: worker_matrix(PERFECT_MT), rounds=3, iterations=1)


def test_fig9_signature_matches_perfect(benchmark):
    """The paper computed 'exactly the same communication pattern' as the
    earlier simulator study; here: signature == perfect on the matrix's
    support and near-equal intensities."""
    perfect = worker_matrix(PERFECT_MT)
    sig = worker_matrix(
        ProfilerConfig(signature_slots=1 << 20, multithreaded_target=True)
    )
    assert np.array_equal(perfect > 0, sig > 0)
    assert np.allclose(perfect, sig, rtol=0.05)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig9_contrasting_topologies(benchmark, bench_record):
    """Extension: the paper's reference [27] characterizes suites by
    communication *topology*.  Our detector recovers three textbook shapes
    from three workloads — band (water-spatial), all-to-all (fft-transpose),
    star (master-worker) — demonstrating the matrix carries structure, not
    just intensity."""
    out = []
    shapes = {}
    for name, threads in (
        ("water-spatial", 5),
        ("fft-transpose", 5),
        ("master-worker", 4),
    ):
        batch = get_trace(name, variant="par", threads=threads)
        res = profile_trace(batch, PERFECT_MT)
        m = communication_matrix(res, n_threads=batch.n_threads)
        shapes[name] = m
        out.append(f"--- {name} ---\n{render_matrix(m[1:, 1:])}")
    bench_record.text("fig9_topologies.txt", "\n".join(out))

    band = shapes["water-spatial"][1:, 1:]
    a2a = shapes["fft-transpose"][1:, 1:]
    star = shapes["master-worker"]
    # all-to-all: every off-diagonal worker pair communicates.
    k = a2a.shape[0]
    assert all(a2a[p, c] > 0 for p in range(k) for c in range(k) if p != c)
    # band: only adjacent pairs.
    assert all(
        (band[p, c] > 0) == (abs(p - c) == 1)
        for p in range(band.shape[0])
        for c in range(band.shape[0])
        if p != c
    )
    # star: workers talk to the master only.
    workers = range(2, star.shape[0])
    assert all(star[w, 1] > 0 and star[1, w] > 0 for w in workers)
    assert all(star[a, b] == 0 for a in workers for b in workers if a != b)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig9_stable_across_interleavings(benchmark):
    """The banded support is a program property, not a schedule artifact."""
    supports = []
    for seed in (0, 1, 2):
        m = worker_matrix(PERFECT_MT, seed=seed)
        supports.append(m > 0)
        band, off = band_split(m)
        assert off == 0
    assert np.array_equal(supports[0], supports[1])
    assert np.array_equal(supports[1], supports[2])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
