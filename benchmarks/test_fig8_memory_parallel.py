"""Figure 8 — profiler memory consumption, parallel Starbench targets.

Paper: 995 MB (8T) / 1920 MB (16T) on average — higher than the
sequential-target 505/1390 MB because of the multi-threaded lock-free queue
implementation, thread-interleaving records, and the extended (thread-id'd)
dependence representation.

Ours: the same memory model with ``mt_target`` components enabled, fed by
real pipeline runs over the pthread-analog traces.
"""

import pytest

from repro.workloads import get_trace

from test_fig7_memory_sequential import run_and_model

TARGET_THREADS = 4


@pytest.fixture(scope="module")
def fig8(starbench_names):
    rows = []
    for name in starbench_names:
        batch = get_trace(name, variant="par", threads=TARGET_THREADS)
        e8 = run_and_model(batch, 8, mt_target=True)
        e16 = run_and_model(batch, 16, mt_target=True)
        rows.append([name, e8.total_mb, e16.total_mb, e8.mt_extra / (1 << 20)])
    rows.append(
        [
            "average",
            sum(r[1] for r in rows) / len(rows),
            sum(r[2] for r in rows) / len(rows),
            sum(r[3] for r in rows) / len(rows),
        ]
    )
    return rows


HEADERS = ["program", "8T_MB", "16T_MB", "mt_extra_8T_MB"]


def test_fig8_memory_parallel(benchmark, fig8, bench_record, starbench_names):
    bench_record.table(
        "fig8_memory_parallel", HEADERS, fig8, title="Figure 8 analog",
        csv=True,
    )
    avg8, avg16 = fig8[-1][1], fig8[-1][2]
    bench_record.record(
        "fig8.avg_memory_8T_mb", avg8, unit="MB", direction="lower",
        tolerance=0.05,
    )
    bench_record.record(
        "fig8.avg_memory_16T_mb", avg16, unit="MB", direction="lower",
        tolerance=0.05,
    )
    # Shape 1: 16T costs more than 8T.
    assert avg16 > avg8
    # Shape 2: parallel targets cost more than sequential targets at the
    # same profiling config (paper: 995 vs 505 MB at 8T).
    seq_avgs = []
    for name in starbench_names:
        batch = get_trace(name)
        seq_avgs.append(run_and_model(batch, 8).total_mb)
    seq_avg = sum(seq_avgs) / len(seq_avgs)
    assert avg8 > seq_avg
    # Shape 3: the MT surcharge is visible but not dominant on average.
    assert 0 < fig8[-1][3] < avg8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
