"""Section III-B — merging identical dependences.

Paper: merging shrank the average NAS output from 6.1 GB of raw dependence
instances to 53 KB of unique records — a ~1e5x reduction that makes the
approach practical at all.

Ours: the measured instances-per-merged-entry factor across the NAS
analogs, plus the resulting Figure-1-format output sizes.  Our traces are
~1e4x smaller than the paper's runs, so the factor lands around 1e2–1e4;
what must hold is that it *scales with trace length* (it is a density, not
a constant) and that outputs stay tiny.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import format_dependences, profile_trace
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


@pytest.fixture(scope="module")
def merge_stats(nas_names):
    rows = []
    for name in nas_names:
        batch = get_trace(name)
        res = profile_trace(batch, PERFECT)
        raw_bytes = res.store.instances * 32  # one unmerged record ~32 B
        merged_bytes = len(format_dependences(res).encode())
        rows.append(
            [
                name,
                res.store.instances,
                len(res.store),
                res.merge_reduction_factor,
                raw_bytes,
                merged_bytes,
                raw_bytes / max(merged_bytes, 1),
            ]
        )
    return rows


HEADERS = [
    "program", "instances", "merged", "merge factor",
    "raw bytes", "output bytes", "size reduction",
]


def test_merge_reduction(benchmark, merge_stats, bench_record):
    bench_record.table(
        "merge_reduction", HEADERS, merge_stats,
        title="Merge reduction (NAS analogs)", csv=True,
    )
    factors = [r[3] for r in merge_stats]
    avg = sum(factors) / len(factors)
    bench_record.record(
        "merge.avg_reduction_factor", avg, unit="x", direction="higher",
        tolerance=0.0, floor=50,
    )
    bench_record.record(
        "merge.max_output_bytes", max(r[5] for r in merge_stats), unit="bytes",
        direction="lower", tolerance=0.0, ceiling=100_000,
    )
    # Shape 1: merging is a multiplicative win on every benchmark.
    assert all(f > 10 for f in factors)
    assert avg > 50
    # Shape 2: merged outputs are kilobytes regardless of instance count.
    assert all(r[5] < 100_000 for r in merge_stats)

    batch = get_trace("cg")
    res = profile_trace(batch, PERFECT)
    benchmark.pedantic(lambda: format_dependences(res), rounds=3, iterations=1)


def test_merge_factor_scales_with_trace_length(benchmark):
    """The reduction factor is a per-iteration density: doubling the run
    roughly doubles instances while merged entries stay put — which is how
    the paper's hour-long runs reach 1e5x."""
    f = {}
    for scale in (1, 2):
        batch = get_trace("mg", scale=scale)
        res = profile_trace(batch, PERFECT)
        f[scale] = (res.store.instances, len(res.store), res.merge_reduction_factor)
    assert f[2][0] > 1.5 * f[1][0]  # instances grow with the run
    assert f[2][1] <= 1.2 * f[1][1]  # merged entries barely move
    assert f[2][2] > 1.4 * f[1][2]  # so the factor grows
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
