"""Figure 6 — profiling slowdowns for *parallel* Starbench targets.

Paper (pthread versions, 4 target threads): average 346x with 8 profiling
threads, 261x with 16 — higher than sequential targets because access+push
lock regions and thread-interleaving bookkeeping add contention; kMeans,
rgbyuv, rotate, bodytrack, h264dec again scale worst.

Ours: the pthread-analog traces run through the real pipeline with
``multithreaded_target`` accounting in the cost model.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import estimate_parallel
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)
TARGET_THREADS = 4


def mt_slowdown(batch, workers):
    cfg = PERFECT_MT.with_(
        workers=workers, chunk_size=256, rebalance_interval_chunks=50
    )
    result, info = ParallelProfiler(cfg, window=4096).profile(batch)
    est = estimate_parallel(
        info,
        result.stats.n_accesses,
        len(result.store),
        lock_free=True,
        queue_depth=cfg.queue_depth,
        mt_target=True,
    )
    return est.slowdown


@pytest.fixture(scope="module")
def fig6(starbench_names):
    rows = []
    for name in starbench_names:
        batch = get_trace(name, variant="par", threads=TARGET_THREADS)
        rows.append([name, mt_slowdown(batch, 8), mt_slowdown(batch, 16)])
    rows.append(
        [
            "average",
            sum(r[1] for r in rows) / len(rows),
            sum(r[2] for r in rows) / len(rows),
        ]
    )
    return rows


HEADERS = ["program", "8T,4Tn", "16T,4Tn"]


def test_fig6_mt_target_slowdowns(benchmark, fig6, bench_record):
    bench_record.table(
        "fig6_slowdown_parallel", HEADERS, fig6,
        title="Figure 6 analog (x slowdown)", csv=True,
    )
    avg8, avg16 = fig6[-1][1], fig6[-1][2]
    bench_record.record(
        "fig6.avg_slowdown_8T", avg8, unit="x", direction="lower",
        tolerance=0.05,
    )
    bench_record.record(
        "fig6.avg_slowdown_16T", avg16, unit="x", direction="lower",
        tolerance=0.05,
    )
    # Shape 1: more profiling threads help (paper: 346 -> 261).
    assert avg16 < avg8
    # Shape 2: averages land in the paper's band.
    assert 250 <= avg8 <= 450
    assert 190 <= avg16 <= 330
    # Shape 3: the 8T->16T improvement is modest (sub-linear scaling).
    assert 1.05 <= avg8 / avg16 <= 1.8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig6_mt_costlier_than_sequential_targets(benchmark, fig6, starbench_names):
    """Cross-figure shape: profiling a parallel target is several times more
    expensive than profiling the sequential version (paper: 346 vs 101)."""
    from repro.costmodel import estimate_parallel as ep
    from repro.common.config import ProfilerConfig

    seq_cfg = ProfilerConfig(
        perfect_signature=True, workers=8, chunk_size=256
    )
    ratios = []
    by_name = {r[0]: r for r in fig6[:-1]}
    for name in ("c-ray", "md5", "rotate"):
        batch = get_trace(name)
        res, info = ParallelProfiler(seq_cfg, window=4096).profile(batch)
        seq = ep(
            info, res.stats.n_accesses, len(res.store), queue_depth=32
        ).slowdown
        ratios.append(by_name[name][1] / seq)
    assert all(r > 1.5 for r in ratios), ratios
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
