"""Measured multi-core speedup of the processes pipeline (Figure 5/6 style).

Every other speedup figure in this repository is *estimated* by the cost
model from measured pipeline statistics, because threads mode cannot beat
the GIL.  The ``processes`` execution mode removes that excuse: workers run
in separate processes over one shared-memory trace, so on multi-core
hardware the wall clock itself must show the paper's scaling trend.  This
experiment measures a 1-vs-4-worker run pair, validates the measurement
against the cost model's virtual-time prediction
(:func:`repro.costmodel.validate_speedup`), and emits both side by side.

On single-core runners the measured ratio is meaningless (the four workers
time-slice one core), so the wall-clock assertion is gated on
``os.cpu_count()``; the model-side assertions always run.
"""

import os
import time

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import validate_speedup
from repro.parallel import ParallelProfiler
from repro.trace import READ, WRITE, TraceBuilder

# Timing note: each configuration runs once (no repeats) — a processes-mode
# run over 600k events is expensive, and the assertion of record is the
# model-vs-measurement agreement, not the absolute wall-clock.

N_EVENTS = 600_000
WORKERS = 4


@pytest.fixture(scope="module")
def speedup_batch():
    """A large balanced synthetic trace: one thread, many addresses, so the
    address hash spreads load evenly and the run is dominated by per-chunk
    analysis (what the fan-out parallelizes)."""
    idx = np.arange(N_EVENTS, dtype=np.int64)
    b = TraceBuilder(capacity=N_EVENTS + 16)
    b.extend_columns(
        kind=np.where(idx % 4 == 0, WRITE, READ).astype(np.uint8),
        tid=np.zeros(N_EVENTS, dtype=np.int32),
        loc=((idx % 97) + 1).astype(np.int32),
        addr=0x10000 + 8 * (idx % (1 << 14)),
    )
    return b.build()


def _timed_run(batch, cfg, workers):
    c = cfg.with_(workers=workers)
    t0 = time.perf_counter()
    result, info = ParallelProfiler(c, mode="processes").profile(batch)
    return time.perf_counter() - t0, result, info


def test_measured_speedup_vs_cost_model(benchmark, bench_record, speedup_batch):
    cfg = ProfilerConfig(signature_slots=1 << 20, chunk_size=8192)
    t1, r1, i1 = _timed_run(speedup_batch, cfg, 1)
    tn, rn, i_n = _timed_run(speedup_batch, cfg, WORKERS)

    # Results must be scheduling-independent: each processes run matches the
    # deterministic single-process pipeline at the same worker count.  (The
    # 1-vs-N stores themselves may differ — a lossy signature partitions its
    # slots differently per worker count.)
    det_n, _ = ParallelProfiler(cfg.with_(workers=WORKERS)).profile(speedup_batch)
    assert rn.store == det_n.store

    val = validate_speedup(
        i1,
        i_n,
        n_accesses=speedup_batch.n_accesses,
        store_entries=len(r1.store),
        measured_seconds_1=t1,
        measured_seconds_n=tn,
        queue_depth=cfg.queue_depth,
    )
    cpus = os.cpu_count() or 1
    bench_record.record(
        "speedup.estimated_4w", val.estimated_speedup, unit="x",
        direction="higher", floor=1.5,
        events=N_EVENTS, workers=WORKERS,
    )
    bench_record.record(
        "speedup.measured_4w", val.measured_speedup, unit="x",
        direction="higher", cpus=cpus,
        # Meaningless on a time-sliced single core; only bound it when the
        # hardware can actually show the scaling.
        floor=1.8 if cpus >= 4 else None,
    )
    bench_record.text(
        "measured_parallel_speedup.txt",
        f"trace               : {N_EVENTS} events, "
        f"{speedup_batch.n_unique_addresses} addresses\n"
        f"workers             : 1 vs {WORKERS} (processes mode, {cpus} cpus)\n"
        f"wall clock          : {t1:.3f}s vs {tn:.3f}s\n"
        f"measured speedup    : {val.measured_speedup:10.2f}x\n"
        f"estimated speedup   : {val.estimated_speedup:10.2f}x (cost model)\n"
        f"relative error      : {val.relative_error:10.2f}\n",
    )
    # The virtual-time model must predict real scaling for a balanced
    # trace: clearly above 1.5x at 4 workers (its producer-coupled Amdahl
    # ceiling sits near 1.8x).
    assert val.estimated_speedup > 1.5
    assert max(i_n.per_worker_accesses) < 2 * min(i_n.per_worker_accesses)
    if cpus >= 4:
        # The ISSUE acceptance bar: real multi-core hardware must show the
        # speedup, not just the model.
        assert val.measured_speedup > 1.8, (
            f"processes mode measured only {val.measured_speedup:.2f}x "
            f"on {cpus} cpus"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
