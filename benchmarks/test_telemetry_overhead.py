"""Telemetry overhead: instrumented vs. uninstrumented profiling runs.

The observability layer promises near-zero cost when no sink is attached
(counters are plain attribute bumps; event construction is guarded by
``sink.enabled``) and modest cost with the JSONL sink on.  This experiment
measures both deltas on a real pipeline run, records the overhead ratios
into the ``obs`` suite record (with the tracing budget declared as a
ceiling on the metric itself), and folds the instrumented run's own
pipeline-health counters — queue stalls, load imbalance — into the same
record through :meth:`BenchRecorder.record_run_report`.
"""

from repro.common.config import ProfilerConfig
from repro.obs import NULL_TRACER, MetricsRegistry, RunReport, Tracer, read_jsonl, repeat_timed
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def _run(batch, registry=None):
    cfg = PERFECT.with_(workers=4)
    return ParallelProfiler(cfg, registry=registry).profile(batch)


def _timed(batch, make_registry, repeats=3):
    """Median seconds over the shared repeat/warmup policy, plus the last
    run's (result, registry) pair."""
    regs = []

    def once():
        reg = make_registry()
        regs.append(reg)
        return _run(batch, reg)

    timed = repeat_timed(once, repeats=repeats, warmup=1)
    return timed, timed.last, regs[-1]


def test_telemetry_overhead(benchmark, bench_record, metrics_registry):
    batch = get_trace("kmeans")

    plain, (r_plain, _), _ = _timed(batch, lambda: None)
    counters, (r_counters, _), _ = _timed(batch, MetricsRegistry)
    # The JSONL-sink run reuses the fixture's registry (one event stream).
    jsonl = repeat_timed(
        lambda: _run(batch, metrics_registry), repeats=1, warmup=0
    )
    (r_jsonl, info_jsonl) = jsonl.last

    # Telemetry must never change the profile itself.
    assert r_plain.store == r_counters.store == r_jsonl.store

    p = bench_record.record(
        "obs.plain_seconds", samples=plain.seconds, unit="seconds",
        direction="lower", warmup=1,
    )
    c = bench_record.record(
        "obs.null_sink_seconds", samples=counters.seconds, unit="seconds",
        direction="lower", warmup=1,
    )
    bench_record.record(
        "obs.null_sink_overhead", c.value / p.value, unit="ratio",
        direction="lower",
    )
    bench_record.record(
        "obs.jsonl_sink_overhead", jsonl.seconds[0] / p.value, unit="ratio",
        direction="lower",
    )
    bench_record.table(
        "telemetry_overhead",
        ["configuration", "seconds", "vs plain"],
        [
            ["no registry", p.value, 1.0],
            ["registry, null sink", c.value, c.value / p.value],
            ["registry, jsonl sink", jsonl.seconds[0], jsonl.seconds[0] / p.value],
        ],
        title="Telemetry overhead (kmeans analog, 4 workers)",
    )

    # The instrumented run's pipeline-health counters ride the same record.
    report = RunReport.build(
        metrics_registry, r_jsonl, info_jsonl, workload="kmeans"
    )
    bench_record.record_run_report(report, "obs.kmeans_pipeline")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_heatmap_overhead(benchmark, bench_record):
    """The memory plane's hot-path budget, gated on the chunk loop itself.

    Heat recording lives in the worker's chunk path (one fused
    searchsorted + bincount per chunk, plus the owner-address scatter for
    occupancy attribution), so that is the loop this experiment times —
    full pipeline runs would drown the signal in trace-analysis and
    scheduling noise.  On/off samples are interleaved in pairs so machine
    drift cancels, and the gated value is the median pairwise ratio.
    """
    import time

    import numpy as np

    from repro.obs.heatmap import heatmap_summary
    from repro.parallel.worker import Worker

    batch = get_trace("kmeans")
    n = len(batch.addr)
    step = ProfilerConfig().chunk_size
    blocks = [np.arange(i, min(i + step, n)) for i in range(0, n, step)]
    workers = {}

    def sample(heat_on, inner=2):
        # Aggregate a couple of fresh chunk loops per sample so scheduler
        # jitter shrinks relative to the measured region.
        dt = 0.0
        for _ in range(inner):
            reg = MetricsRegistry()
            w = Worker(0, ProfilerConfig(workers=1, heatmap=heat_on), registry=reg)
            w.process_rows(batch, blocks[0])  # loop-index build: not timed
            t0 = time.perf_counter()
            for rows in blocks[1:]:
                w.process_rows(batch, rows)
            w.publish_heat()
            dt += time.perf_counter() - t0
            workers[heat_on] = (w, reg)
        return dt

    sample(True, inner=1)
    sample(False, inner=1)  # warmup both paths
    ratios = [sample(True) / sample(False) for _ in range(9)]

    # Heat must never change the profile, and its totals must reconcile
    # exactly with the events the worker processed.
    w_on, reg_on = workers[True]
    w_off, _ = workers[False]
    assert w_on.store == w_off.store
    doc = heatmap_summary(reg_on)
    heat_total = doc["total_reads"] + doc["total_writes"]
    assert heat_total == w_on.accesses_processed

    rec = bench_record.record(
        "obs.heatmap_overhead", samples=ratios, unit="ratio",
        direction="lower", ceiling=1.15, heat_accesses=heat_total,
    )
    ratio = rec.value
    bench_record.table(
        "heatmap_overhead",
        ["configuration", "vs heat off"],
        [
            ["chunk loop, heatmap off", 1.0],
            ["chunk loop, heatmap on", ratio],
        ],
        title=f"Address-heatmap overhead (kmeans analog, {len(blocks)} chunks)",
    )
    assert ratio < 1.15, f"heatmap overhead {ratio:.2f}x exceeds budget"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_tracing_overhead_guard(benchmark, bench_record, results_dir, tmp_path):
    """The null-tracer contract, measured: an untraced pipeline run never
    reaches a tracer record method (the NullTracer call counter stays
    flat), and a fully traced run stays within a small multiple of the
    untraced time."""
    batch = get_trace("kmeans")

    calls_before = NULL_TRACER.record_calls
    plain, (r_plain, _), _ = _timed(batch, lambda: None)
    null_reg, (r_null_reg, _), _ = _timed(batch, MetricsRegistry)
    assert NULL_TRACER.record_calls == calls_before, (
        "untraced hot path called a tracer record method"
    )

    traced, (r_traced, _), reg = _timed(
        batch, lambda: MetricsRegistry(tracer=Tracer())
    )
    tracer = reg.tracer
    assert tracer.n_events > 0
    assert r_traced.store == r_plain.store == r_null_reg.store

    baseline = min(plain.median, null_reg.median)
    ratio = traced.median / baseline
    # Generous CI budget (declared as the metric's ceiling, enforced by the
    # bench gate): timeline recording is a list append per event.
    bench_record.record(
        "obs.tracing_overhead", ratio, unit="ratio", direction="lower",
        ceiling=2.5, trace_events=tracer.n_events,
    )
    bench_record.table(
        "tracing_overhead",
        ["configuration", "seconds", "vs untraced"],
        [
            ["untraced", baseline, 1.0],
            ["traced", traced.median, ratio],
        ],
        title=f"Tracing overhead (kmeans analog, {tracer.n_events} events)",
    )
    from repro.obs import validate_chrome_trace_file, write_chrome_trace

    trace_path = tmp_path / "tracing_overhead.trace.json"
    write_chrome_trace(trace_path, tracer, meta={"workload": "kmeans"})
    assert validate_chrome_trace_file(trace_path) == []
    assert ratio < 2.5, f"tracing overhead {ratio:.2f}x exceeds budget"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_streaming_overhead_guard(benchmark, bench_record, tmp_path):
    """The live-telemetry tentpole, gated: a TelemetryStreamer emitting
    delta snapshots at a tight cadence alongside the run must stay within a
    declared multiple of the unstreamed time (the ceiling rides the metric
    into the bench gate), and the stream must replay to the run's final
    registry state."""
    from repro.obs import TelemetryStreamer, replay_stream

    batch = get_trace("kmeans")
    plain, (r_plain, _), _ = _timed(batch, lambda: None)

    stream_path = tmp_path / "stream.jsonl"

    def once():
        reg = MetricsRegistry(run_id="bench")
        with TelemetryStreamer(reg, stream_path, interval_s=0.02):
            return _run(batch, reg)

    streamed = repeat_timed(once, repeats=3, warmup=1)
    r_streamed, _ = streamed.last
    assert r_streamed.store == r_plain.store  # streaming never alters results

    replayed, info = replay_stream(stream_path)  # last repeat's stream
    assert info["final"] is not None
    assert replayed.snapshot()["counters"] == info["final"]["counters"]

    ratio = streamed.median / plain.median
    bench_record.record(
        "obs.streaming_overhead", ratio, unit="ratio", direction="lower",
        ceiling=2.0, stream_deltas=info["n_deltas"],
    )
    bench_record.table(
        "streaming_overhead",
        ["configuration", "seconds", "vs plain"],
        [
            ["no registry", plain.median, 1.0],
            ["streamed @20ms", streamed.median, ratio],
        ],
        title=f"Live-stream overhead (kmeans analog, {info['n_deltas']} deltas)",
    )
    assert ratio < 2.0, f"streaming overhead {ratio:.2f}x exceeds budget"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_metrics_jsonl_event_stream(metrics_registry, results_dir, benchmark):
    """The fixture captures a readable JSONL event stream — in a temp dir,
    never under ``benchmarks/results/`` (only curated tables are checked
    in)."""
    batch = get_trace("ep")
    ParallelProfiler(PERFECT.with_(workers=2), registry=metrics_registry).profile(batch)
    metrics_registry.sink.flush()
    path = metrics_registry.sink.path
    assert path.exists()
    assert results_dir not in path.parents
    events = read_jsonl(path)
    assert any(e["type"] == "span" for e in events)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ledger_overhead(benchmark, bench_record, tmp_path):
    """The run-ledger budget, gated: profiling with a ledger attached (the
    engine checkpoint plus the full finalize — report build, canonical edge
    list, digest, loop table, atomic write) must stay within 1.05x of the
    bare profile.  On/off samples are interleaved in pairs so machine drift
    cancels; the gated value is the median pairwise ratio.  Measured on the
    amplified cg trace: bundle cost is a per-run constant (report + edge
    list + digest + one atomic write) while profiling scales with the
    trace, so the gate uses a trace of representative length rather than a
    toy one that would inflate the ratio."""
    from repro.obs import RunLedger, diff_bundles, load_bundle

    batch = get_trace("amp-cg")
    n_runs = [0]

    def once(with_ledger):
        reg = MetricsRegistry(run_id=f"bench-{n_runs[0]}")
        ledger = None
        if with_ledger:
            ledger = RunLedger(
                tmp_path, f"bench-{n_runs[0]}", meta={"workload": "amp-cg"}
            )
        n_runs[0] += 1
        cfg = PERFECT.with_(workers=4)
        result, info = ParallelProfiler(
            cfg, registry=reg, ledger=ledger
        ).profile(batch)
        if ledger is not None:
            report = RunReport.build(reg, result=result, info=info)
            ledger.finalize(reg, report=report, result=result, info=info)
        return result, ledger

    (r_on, led), _ = once(True), once(False)  # warmup both paths
    samples = []
    for _ in range(5):
        on = repeat_timed(lambda: once(True), repeats=1, warmup=0)
        off = repeat_timed(lambda: once(False), repeats=1, warmup=0)
        samples.append(on.seconds[0] / off.seconds[0])

    # The ledger must never change the profile, and its bundle must satisfy
    # the self-diff contract on the spot.
    r_off, _ = off.last
    assert r_on.store == r_off.store
    doc = load_bundle(led.path)
    assert diff_bundles(doc, doc).identical

    rec = bench_record.record(
        "obs.ledger_overhead", samples=samples, unit="ratio",
        direction="lower", ceiling=1.05,
        bundle_bytes=led.path.stat().st_size,
    )
    bench_record.table(
        "ledger_overhead",
        ["configuration", "vs no ledger"],
        [
            ["profile, no ledger", 1.0],
            ["profile + bundle finalize", rec.value],
        ],
        title="Run-ledger overhead (amplified cg trace, 4 workers)",
    )
    assert rec.value < 1.05, f"ledger overhead {rec.value:.3f}x exceeds budget"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
