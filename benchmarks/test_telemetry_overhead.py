"""Telemetry overhead: instrumented vs. uninstrumented profiling runs.

The observability layer promises near-zero cost when no sink is attached
(counters are plain attribute bumps; event construction is guarded by
``sink.enabled``) and modest cost with the JSONL sink on.  This experiment
measures both deltas on a real pipeline run and drops the instrumented
run's event log next to the other artifacts via the ``metrics_registry``
fixture — the telemetry trail a benchmark run is expected to leave.
"""

import time

from repro.common.config import ProfilerConfig
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer, read_jsonl
from repro.parallel import ParallelProfiler
from repro.report import ascii_table
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def _timed_run(batch, registry=None):
    cfg = PERFECT.with_(workers=4)
    t0 = time.perf_counter()
    result, info = ParallelProfiler(cfg, registry=registry).profile(batch)
    return time.perf_counter() - t0, result


def test_telemetry_overhead(benchmark, emit, metrics_registry, results_dir):
    batch = get_trace("kmeans")
    _timed_run(batch)  # warm the trace cache and code paths

    t_plain, r_plain = _timed_run(batch)
    t_counters, r_counters = _timed_run(batch, MetricsRegistry())
    t_jsonl, r_jsonl = _timed_run(batch, metrics_registry)

    # Telemetry must never change the profile itself.
    assert r_plain.store == r_counters.store == r_jsonl.store

    rows = [
        ["no registry", t_plain, 1.0],
        ["registry, null sink", t_counters, t_counters / t_plain],
        ["registry, jsonl sink", t_jsonl, t_jsonl / t_plain],
    ]
    emit(
        "telemetry_overhead.txt",
        ascii_table(
            ["configuration", "seconds", "vs plain"], rows,
            title="Telemetry overhead (kmeans analog, 4 workers)",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_tracing_overhead_guard(benchmark, emit, results_dir):
    """The null-tracer contract, measured: an untraced pipeline run never
    reaches a tracer record method (the NullTracer call counter stays
    flat), and a fully traced run stays within a small multiple of the
    untraced time."""
    batch = get_trace("kmeans")
    _timed_run(batch)  # warm caches and code paths

    calls_before = NULL_TRACER.record_calls
    t_plain, r_plain = _timed_run(batch)
    t_null_reg, r_null_reg = _timed_run(batch, MetricsRegistry())
    assert NULL_TRACER.record_calls == calls_before, (
        "untraced hot path called a tracer record method"
    )

    tracer = Tracer()
    t_traced, r_traced = _timed_run(batch, MetricsRegistry(tracer=tracer))
    assert tracer.n_events > 0
    assert r_traced.store == r_plain.store == r_null_reg.store

    baseline = min(t_plain, t_null_reg)
    ratio = t_traced / baseline
    emit(
        "tracing_overhead.txt",
        ascii_table(
            ["configuration", "seconds", "vs untraced"],
            [
                ["untraced", baseline, 1.0],
                ["traced", t_traced, ratio],
            ],
            title=f"Tracing overhead (kmeans analog, {tracer.n_events} events)",
        ),
    )
    from repro.obs import validate_chrome_trace_file, write_chrome_trace

    trace_path = results_dir / "tracing_overhead.trace.json"
    write_chrome_trace(trace_path, tracer, meta={"workload": "kmeans"})
    assert validate_chrome_trace_file(trace_path) == []
    # Generous CI budget: timeline recording is a list append per event.
    assert ratio < 2.5, f"tracing overhead {ratio:.2f}x exceeds budget"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_metrics_jsonl_event_stream(metrics_registry, results_dir, benchmark):
    """The fixture captures a readable JSONL event stream — in a temp dir,
    never under ``benchmarks/results/`` (only curated tables are checked
    in)."""
    batch = get_trace("ep")
    ParallelProfiler(PERFECT.with_(workers=2), registry=metrics_registry).profile(batch)
    metrics_registry.sink.flush()
    path = metrics_registry.sink.path
    assert path.exists()
    assert results_dir not in path.parents
    events = read_jsonl(path)
    assert any(e["type"] == "span" for e in events)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
