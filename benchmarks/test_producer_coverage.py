"""Fast-path event coverage of the sequential suite (not a paper artifact).

The dependence-graph scheduler's headline number is *coverage*: the share
of all produced trace events that the vectorized fast path emitted instead
of the tree-walking interpreter.  This module sweeps every sequential
workload (NAS + Starbench + splash2x analogs), records per-workload and
aggregate coverage, and declares the aggregate floor the CI gate enforces —
the dependence-graph scheduler lifted it from 18.3% to ~40%, and it must
not regress below 35%.

Workloads newly covered by the scheduler (reduction, sequential-recurrence,
and dynamic-index lanes) also get producer-throughput speedup floors:
fast-path vs. interpreted events/s on the same program, a machine-
independent ratio.
"""

from repro.obs import MetricsRegistry, repeat_timed
from repro.workloads import get_workload, workloads_in_suite
from repro.minivm import run_program

SEQ_SUITES = ("nas", "starbench", "splash2x")

#: Representative workloads that only vectorize through the new statement-
#: group lanes, with conservative fast/interp speedup floors.
NEWLY_COVERED = {
    "cg": 1.1,  # sum/dot reductions -> ufunc.accumulate lane
    "is": 1.5,  # histogram rank -> dynamic-index + sequential lanes
    "lu": 1.2,  # multi-statement elimination bodies -> group schedule
    "mg": 1.5,  # multi-statement stencil relaxations -> group schedule
}


def _producer_counters(program, schedule=None):
    reg = MetricsRegistry()
    batch = run_program(program, schedule=schedule, fastpath=True, registry=reg)
    snap = reg.snapshot()
    fast = snap["counters"].get("producer.events_fastpath", 0)
    slow = snap["counters"].get("producer.events_interpreted", 0)
    cov = snap["gauges"].get("producer.fastpath_coverage", 0.0)
    return batch, fast, fast + slow, cov


def test_seq_suite_fastpath_coverage(bench_record):
    """Aggregate fast-path coverage over the whole sequential suite, with
    the >=35% floor enforced by ``ddprof bench compare``."""
    rows = []
    total_fast = total_events = 0
    for suite in SEQ_SUITES:
        for wl in workloads_in_suite(suite):
            program, _meta = wl.build_seq(wl.default_scale)
            _batch, fast, tot, cov = _producer_counters(program)
            total_fast += fast
            total_events += tot
            rows.append([wl.name, suite, fast, tot, round(cov, 4)])
    coverage = total_fast / total_events
    bench_record.record(
        "producer.seq_coverage", coverage, unit="fraction", direction="higher",
        floor=0.35, events=total_events,
    )
    bench_record.table(
        "producer_coverage",
        ["workload", "suite", "fastpath_events", "total_events", "coverage"],
        rows,
        csv=True,
    )


def test_newly_covered_throughput(bench_record):
    """Producer speedup on workloads the single-template fast path used to
    reject entirely — the measured win the scheduler is accountable for."""
    for name, floor in sorted(NEWLY_COVERED.items()):
        wl = get_workload(name)
        program, _meta = wl.build_seq(wl.default_scale)

        def run(fastpath):
            return run_program(program, fastpath=fastpath)

        fast_t = repeat_timed(lambda: run(True), repeats=3, warmup=1)
        slow_t = repeat_timed(lambda: run(False), repeats=3, warmup=1)
        n_events = len(fast_t.last)
        fast_eps = [n_events / s for s in fast_t.seconds]
        slow_eps = [n_events / s for s in slow_t.seconds]
        bench_record.record(
            f"producer.{name}_fastpath_eps", samples=fast_eps,
            unit="events/s", direction="higher", warmup=1, events=n_events,
        )
        # Machine-independent ratio, but still a ratio of two wall-clock
        # medians: the *floor* is the guarantee; the regression band needs
        # headroom beyond the default 25%.
        bench_record.record(
            f"producer.{name}_speedup",
            sorted(fast_eps)[1] / sorted(slow_eps)[1],
            unit="x", direction="higher", floor=floor, tolerance=0.5,
        )
