"""Figure 7 — profiler memory consumption, sequential targets.

Paper (6.25e6 signature slots per profiling thread — 191 MB at 8T, 382 MB
at 16T for the signatures alone): averages 473/505 MB at 8T and 649/1390 MB
at 16T for NAS/Starbench; md5 at 16T is the 7.6 GB outlier (queue buildup);
the signature share grows linearly with threads.

Ours: the byte-level memory model combines the configured signature sizes
with *measured* run volumes (chunk-pool high-water mark, dependence-store
entries) of real pipeline runs, at slot counts scaled to our workloads.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import estimate_memory
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace

SLOTS_PER_WORKER = 65_536  # scaled stand-in for the paper's 6.25e6


def run_and_model(batch, workers, mt_target=False):
    cfg = ProfilerConfig(
        perfect_signature=True,  # run exact; memory is modelled per config
        workers=workers,
        chunk_size=256,
        multithreaded_target=mt_target,
    )
    result, info = ParallelProfiler(cfg, window=4096).profile(batch)
    mem_cfg = ProfilerConfig(
        signature_slots=SLOTS_PER_WORKER * workers, workers=workers
    )
    from repro.trace import LOCK_ACQ, LOCK_REL
    import numpy as np

    n_sync = int(
        np.count_nonzero((batch.kind == LOCK_ACQ) | (batch.kind == LOCK_REL))
    )
    est = estimate_memory(
        mem_cfg,
        info,
        store_entries=len(result.store),
        n_unique_addresses=batch.n_unique_addresses,
        n_sync_events=n_sync,
        mt_target=mt_target,
    )
    return est


@pytest.fixture(scope="module")
def fig7(all_seq_names):
    rows = []
    for name in all_seq_names:
        batch = get_trace(name)
        e8 = run_and_model(batch, 8)
        e16 = run_and_model(batch, 16)
        native_mb = (batch.n_unique_addresses * 8 * 2) / (1 << 20)
        rows.append([name, native_mb, e8.total_mb, e16.total_mb])
    return rows


HEADERS = ["program", "native_MB", "8T_lock-free_MB", "16T_lock-free_MB"]


def test_fig7_memory_sequential(benchmark, fig7, bench_record):
    bench_record.table(
        "fig7_memory_sequential", HEADERS, fig7, title="Figure 7 analog",
        csv=True,
    )
    avg8 = sum(r[2] for r in fig7) / len(fig7)
    avg16 = sum(r[3] for r in fig7) / len(fig7)
    bench_record.record(
        "fig7.avg_memory_8T_mb", avg8, unit="MB", direction="lower",
        tolerance=0.05,
    )
    bench_record.record(
        "fig7.avg_memory_16T_mb", avg16, unit="MB", direction="lower",
        tolerance=0.05,
    )
    # Shape 1: 16 threads cost roughly 2x the signature memory of 8
    # (per-thread slots are fixed), so totals grow markedly but sub-2x
    # because of thread-independent components.
    assert avg16 > avg8 * 1.3
    assert avg16 < avg8 * 2.5
    # Shape 2: profiling memory dwarfs native data but stays bounded —
    # every benchmark fits the same configured budget (the signature's
    # whole point versus shadow memory).
    for r in fig7:
        assert r[2] > r[1]
        assert r[2] < 200  # MB, bounded regardless of benchmark
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig7_signature_memory_is_configured_not_data_dependent(benchmark):
    """The signature share is identical across benchmarks at one config —
    the bounded-state property of Section III-B."""
    sigs = set()
    for name in ("ep", "rgbyuv"):
        batch = get_trace(name)
        sigs.add(run_and_model(batch, 8).signatures)
    assert len(sigs) == 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig7_shadow_memory_comparison(benchmark, bench_record):
    """Section III-B's motivation: shadow memory scales with the address
    footprint while the signature is fixed; for address-hungry programs the
    shadow tracker costs many times the signature."""
    from repro.sigmem import ArraySignature, ShadowMemory
    from repro.sigmem.signature import AccessRecord

    batch = get_trace("rgbyuv")
    mask = batch.access_mask()
    addrs = batch.addr[mask]
    rec = AccessRecord(1, 1, 0, 0)
    shadow = ShadowMemory()
    sig = ArraySignature(SLOTS_PER_WORKER)

    def fill_shadow():
        for a in addrs[:20000]:
            shadow.insert(int(a), rec)

    benchmark.pedantic(fill_shadow, rounds=1, iterations=1)
    for a in addrs[:20000]:
        sig.insert(int(a), rec)
    bench_record.record(
        "fig7.shadow_bytes_rgbyuv", shadow.memory_bytes, unit="bytes",
        direction="lower", tolerance=0.02,
    )
    bench_record.record(
        "fig7.signature_bytes", sig.memory_bytes, unit="bytes",
        direction="lower", tolerance=0.0,
    )
    bench_record.text(
        "fig7_shadow_vs_signature.txt",
        f"shadow pages={shadow.n_pages} bytes={shadow.memory_bytes}\n"
        f"signature bytes={sig.memory_bytes} (fixed)\n",
    )
    # The shadow cost is data-dependent; the signature's is not.
    assert shadow.memory_bytes > 0
    assert sig.memory_bytes == ArraySignature(SLOTS_PER_WORKER).memory_bytes
