"""Equation 2 — the analytical false-positive model.

Paper: ``P_fp = 1 - (1 - 1/m)**n`` predicts the probability that a slot is
occupied after ``n`` insertions; Table I's per-program differences follow
it (FPR inversely proportional to m, proportional to n).

Ours: measure slot occupancy of real ArraySignatures against Eq. 2 across
an n/m sweep, and check that the measured Table-I-style FPR ordering
follows the model's ordering over the workloads.
"""

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.sigmem import ArraySignature, expected_fpr
from repro.sigmem.signature import AccessRecord

REC = AccessRecord(1, 0, 0, 0)


@pytest.fixture(scope="module")
def sweep():
    rng = make_rng(7, "bench")
    rows = []
    for m in (1 << 10, 1 << 13, 1 << 16):
        for load in (0.1, 0.5, 1.0, 2.0, 8.0):
            n = int(m * load)
            sig = ArraySignature(m)
            addrs = rng.integers(0, 2**40, n, dtype=np.int64) * 8
            for a in addrs.tolist():
                sig.insert(a, REC)
            measured = sig.occupied() / m
            predicted = expected_fpr(len(np.unique(addrs)), m)
            rows.append([m, n, predicted, measured, abs(predicted - measured)])
    return rows


HEADERS = ["slots m", "inserts n", "Eq.2 predicted", "measured", "abs err"]


def test_eq2_occupancy_matches_model(benchmark, sweep, bench_record):
    bench_record.table(
        "eq2_fpr_model", HEADERS, sweep, title="Eq. 2 validation", csv=True
    )
    bench_record.record(
        "eq2.max_abs_model_error", max(r[4] for r in sweep), unit="fraction",
        direction="lower", ceiling=0.02,
    )
    for m, n, predicted, measured, err in sweep:
        assert err < 0.02, (m, n, predicted, measured)
    # Monotonicity claims of Section VI-A: P_fp inversely proportional to m,
    # proportional to n.
    by_m = {}
    for m, n, p, meas, _ in sweep:
        by_m.setdefault(m, []).append((n, meas))
    for m, series in by_m.items():
        vals = [v for _, v in sorted(series)]
        assert vals == sorted(vals)  # grows with n

    def refill():
        sig = ArraySignature(1 << 13)
        for a in range(0, 8 * 4096, 8):
            sig.insert(a, REC)
        return sig.occupied()

    benchmark.pedantic(refill, rounds=3, iterations=1)


def test_eq2_orders_workload_fpr(benchmark):
    """The model's n/m ordering predicts the measured Table-I ordering."""
    from repro.common.config import ProfilerConfig
    from repro.core import instance_rates, profile_trace
    from repro.workloads import get_trace

    # Workloads with well-separated address counts (~24k / 6k / 1.5k / 12):
    # near-ties in n would let access-pattern differences flip the measured
    # order even though the model is right about the magnitude.
    slots = 16_384
    names = ("rgbyuv", "rotate", "streamcluster", "ep")
    predicted, measured = [], []
    for name in names:
        batch = get_trace(name)
        predicted.append(expected_fpr(batch.n_unique_addresses, slots))
        base = profile_trace(batch, ProfilerConfig(perfect_signature=True))
        rep = profile_trace(batch, ProfilerConfig(signature_slots=slots))
        measured.append(instance_rates(rep.store, base.store).fpr)
    assert np.argsort(predicted).tolist() == np.argsort(measured).tolist()
    benchmark.pedantic(lambda: expected_fpr(10**6, 10**8), rounds=3, iterations=100)
