"""Throughput of this library's own engines (not a paper artifact).

The reproduction keeps two equivalent engines: the event-at-a-time
reference (the executable spec, also what pipeline workers run) and the
vectorized numpy engine.  This bench records their throughput so
regressions in either path are visible, and checks the vectorized speedup
that makes whole-suite experiments practical.
"""

import time

import pytest

from repro.common.config import ProfilerConfig
from repro.core import DependenceProfiler
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)
SIG = ProfilerConfig(signature_slots=1 << 18)


def events_per_second(batch, config, engine):
    prof = DependenceProfiler(config, engine)
    t0 = time.perf_counter()
    prof.profile(batch)
    return len(batch) / (time.perf_counter() - t0)


@pytest.fixture(scope="module")
def big_trace():
    return get_trace("kmeans")  # the largest standard trace (~145k events)


def test_vectorized_speedup(benchmark, big_trace, emit):
    ref = max(events_per_second(big_trace, PERFECT, "reference") for _ in range(2))
    vec = max(events_per_second(big_trace, PERFECT, "vectorized") for _ in range(2))
    emit(
        "engine_throughput.txt",
        f"reference : {ref:12.0f} events/s\n"
        f"vectorized: {vec:12.0f} events/s\n"
        f"speedup   : {vec / ref:12.1f}x\n",
    )
    assert vec > 1.5 * ref  # the vectorized engine must stay clearly ahead
    benchmark.pedantic(
        lambda: DependenceProfiler(PERFECT, "vectorized").profile(big_trace),
        rounds=3,
        iterations=1,
    )


def test_signature_mode_throughput(benchmark, big_trace):
    """Signature hashing adds little over perfect keys in the vectorized
    engine (keys are hashed columns either way)."""
    per = events_per_second(big_trace, PERFECT, "vectorized")
    sig = events_per_second(big_trace, SIG, "vectorized")
    assert sig > 0.4 * per
    benchmark.pedantic(
        lambda: DependenceProfiler(SIG, "vectorized").profile(big_trace),
        rounds=3,
        iterations=1,
    )


def test_reference_engine_benchmarked(benchmark):
    batch = get_trace("md5")
    benchmark.pedantic(
        lambda: DependenceProfiler(PERFECT, "reference").profile(batch),
        rounds=3,
        iterations=1,
    )


def _worker_chunk_throughput(batch, engine, chunk_size):
    """Events/s of one pipeline Worker fed the whole trace in chunks —
    the quantity the processes mode actually parallelizes."""
    import numpy as np

    from repro.parallel.worker import Worker

    cfg = PERFECT.with_(workers=1, chunk_size=chunk_size, worker_engine=engine)
    worker = Worker(0, cfg)
    rows = np.arange(len(batch), dtype=np.int64)
    t0 = time.perf_counter()
    for seq, s in enumerate(range(0, len(rows), chunk_size)):
        worker.process_rows(batch, rows[s : s + chunk_size], seq=seq)
    return len(batch) / (time.perf_counter() - t0), worker


def test_vectorized_worker_kernel_speedup(benchmark, big_trace, emit):
    """The incremental chunk kernel must beat the per-event reference worker
    by >=5x on identical chunk streams — the margin that makes the
    processes-mode fan-out worth its transport overhead."""
    chunk_size = 8192
    ref_eps, ref_w = _worker_chunk_throughput(big_trace, "reference", chunk_size)
    best_vec = 0.0
    for _ in range(2):  # best-of-2 to shake off interpreter warm-up noise
        vec_eps, vec_w = _worker_chunk_throughput(big_trace, "vectorized", chunk_size)
        best_vec = max(best_vec, vec_eps)
    assert vec_w.store == ref_w.store  # same chunks, same dependences
    speedup = best_vec / ref_eps
    emit(
        "worker_kernel_throughput.txt",
        f"reference worker : {ref_eps:12.0f} events/s\n"
        f"vectorized worker: {best_vec:12.0f} events/s\n"
        f"speedup          : {speedup:12.1f}x  (chunk_size={chunk_size})\n",
    )
    assert speedup >= 5.0, (
        f"vectorized worker kernel only {speedup:.1f}x over reference "
        f"(needs >=5x)"
    )
    benchmark.pedantic(
        lambda: _worker_chunk_throughput(big_trace, "vectorized", chunk_size),
        rounds=3,
        iterations=1,
    )
