"""Throughput of this library's own engines (not a paper artifact).

The reproduction keeps two equivalent engines: the event-at-a-time
reference (the executable spec, also what pipeline workers run) and the
vectorized numpy engine.  This bench records both throughputs — and the
vectorized/worker-kernel speedups that make whole-suite experiments
practical — into the ``engine`` suite record, with the >=5x / >=1.5x
floors declared on the metrics themselves so ``ddprof bench compare``
enforces them alongside the baseline regression gate.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import DependenceProfiler
from repro.obs import repeat_timed
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)
SIG = ProfilerConfig(signature_slots=1 << 18)


def eps_samples(batch, config, engine, repeats=3, warmup=1):
    """Per-repeat events/s of one engine over ``batch`` (shared
    warmup/repeat policy)."""
    timed = repeat_timed(
        lambda: DependenceProfiler(config, engine).profile(batch),
        repeats=repeats,
        warmup=warmup,
    )
    return [len(batch) / s for s in timed.seconds]


@pytest.fixture(scope="module")
def big_trace():
    return get_trace("kmeans")  # the largest standard trace (~145k events)


def test_vectorized_speedup(benchmark, big_trace, bench_record):
    ref = eps_samples(big_trace, PERFECT, "reference")
    vec = eps_samples(big_trace, PERFECT, "vectorized")
    r = bench_record.record(
        "engine.reference_eps", samples=ref, unit="events/s",
        direction="higher", warmup=1,
    )
    v = bench_record.record(
        "engine.vectorized_eps", samples=vec, unit="events/s",
        direction="higher", warmup=1,
    )
    speedup = v.value / r.value
    bench_record.record(
        "engine.vectorized_speedup", speedup, unit="x", direction="higher",
        floor=1.5,
    )
    assert speedup > 1.5  # the vectorized engine must stay clearly ahead
    benchmark.pedantic(
        lambda: DependenceProfiler(PERFECT, "vectorized").profile(big_trace),
        rounds=3,
        iterations=1,
    )


def test_signature_mode_throughput(benchmark, big_trace, bench_record):
    """Signature hashing adds little over perfect keys in the vectorized
    engine (keys are hashed columns either way)."""
    per = eps_samples(big_trace, PERFECT, "vectorized")
    sig = eps_samples(big_trace, SIG, "vectorized")
    s = bench_record.record(
        "engine.signature_mode_eps", samples=sig, unit="events/s",
        direction="higher", warmup=1,
    )
    p_med = sorted(per)[len(per) // 2]
    ratio = s.value / p_med
    bench_record.record(
        "engine.signature_vs_perfect_ratio", ratio, unit="fraction",
        direction="higher", floor=0.4,
    )
    assert ratio > 0.4
    benchmark.pedantic(
        lambda: DependenceProfiler(SIG, "vectorized").profile(big_trace),
        rounds=3,
        iterations=1,
    )


def test_reference_engine_benchmarked(benchmark):
    batch = get_trace("md5")
    benchmark.pedantic(
        lambda: DependenceProfiler(PERFECT, "reference").profile(batch),
        rounds=3,
        iterations=1,
    )


def _worker_chunk_run(batch, engine, chunk_size):
    """One pipeline Worker fed the whole trace in chunks — the quantity
    the processes mode actually parallelizes."""
    import numpy as np

    from repro.parallel.worker import Worker

    cfg = PERFECT.with_(workers=1, chunk_size=chunk_size, worker_engine=engine)
    worker = Worker(0, cfg)
    rows = np.arange(len(batch), dtype=np.int64)
    for seq, s in enumerate(range(0, len(rows), chunk_size)):
        worker.process_rows(batch, rows[s : s + chunk_size], seq=seq)
    return worker


def test_vectorized_worker_kernel_speedup(benchmark, big_trace, bench_record):
    """The incremental chunk kernel must beat the per-event reference worker
    by >=5x on identical chunk streams — the margin that makes the
    processes-mode fan-out worth its transport overhead."""
    chunk_size = 8192
    ref = repeat_timed(
        lambda: _worker_chunk_run(big_trace, "reference", chunk_size),
        repeats=2, warmup=1,
    )
    vec = repeat_timed(
        lambda: _worker_chunk_run(big_trace, "vectorized", chunk_size),
        repeats=3, warmup=1,
    )
    assert vec.last.store == ref.last.store  # same chunks, same dependences
    r = bench_record.record(
        "worker.reference_eps", samples=[len(big_trace) / s for s in ref.seconds],
        unit="events/s", direction="higher", warmup=1, chunk_size=chunk_size,
    )
    v = bench_record.record(
        "worker.vectorized_eps", samples=[len(big_trace) / s for s in vec.seconds],
        unit="events/s", direction="higher", warmup=1, chunk_size=chunk_size,
    )
    speedup = v.value / r.value
    bench_record.record(
        "worker.kernel_speedup", speedup, unit="x", direction="higher",
        floor=5.0, chunk_size=chunk_size,
    )
    assert speedup >= 5.0, (
        f"vectorized worker kernel only {speedup:.1f}x over reference "
        f"(needs >=5x)"
    )
    benchmark.pedantic(
        lambda: _worker_chunk_run(big_trace, "vectorized", chunk_size),
        rounds=3,
        iterations=1,
    )
