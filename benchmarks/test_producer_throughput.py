"""Throughput of the trace producer's affine fast path (not a paper artifact).

The producer fast path executes classified affine MiniVM loops as whole
iteration-space array operations and bulk-emits their trace rows.  This
bench records producer throughput with the fast path on and off so
regressions in either path are visible, and guards the speedup that keeps
whole-suite experiments producer-bound no longer (see EXPERIMENTS.md's
Fig. 5/6 discussion).
"""

import time

import numpy as np

from repro.minivm import ProgramBuilder, run_program
from repro.workloads import get_workload

N = 20000


def affine_dominated_program():
    """Three streaming affine loops over int arrays — the shape the fast
    path is built for (fill, map, elementwise combine)."""
    pb = ProgramBuilder("affine-bench")
    a = pb.global_array("a", N)
    b = pb.global_array("b", N)
    c = pb.global_array("c", N)
    with pb.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, N):
            f.store(a, i, i * 3)
        with f.for_loop(i, 0, N):
            f.store(b, i, f.load(a, i) + 7)
        with f.for_loop(i, 0, N):
            f.store(c, i, f.load(a, i) * f.load(b, i))
    return pb.build()


def producer_eps(build, fastpath):
    program = build()
    t0 = time.perf_counter()
    batch = run_program(program, fastpath=fastpath)
    return len(batch) / (time.perf_counter() - t0), batch


def test_affine_fastpath_speedup(benchmark, emit):
    """The fast path must beat the tree-walking producer by >=5x on an
    affine-dominated workload, while producing a bit-identical trace."""
    interp_eps, interp_batch = producer_eps(affine_dominated_program, False)
    best_fast, fast_batch = 0.0, None
    for _ in range(2):  # best-of-2 to shake off interpreter warm-up noise
        fast_eps, fast_batch = producer_eps(affine_dominated_program, True)
        best_fast = max(best_fast, fast_eps)
    for col in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
        assert np.array_equal(
            getattr(fast_batch, col), getattr(interp_batch, col)
        ), col
    speedup = best_fast / interp_eps
    emit(
        "producer_throughput.txt",
        f"interpreted producer: {interp_eps:12.0f} events/s\n"
        f"fast-path producer  : {best_fast:12.0f} events/s\n"
        f"speedup             : {speedup:12.1f}x  ({len(fast_batch)} events)\n",
    )
    assert speedup >= 5.0, (
        f"affine fast path only {speedup:.1f}x over the interpreter "
        f"(needs >=5x on affine-dominated loops)"
    )
    benchmark.pedantic(
        lambda: producer_eps(affine_dominated_program, True),
        rounds=3,
        iterations=1,
    )


def test_bundled_workload_coverage(emit):
    """Record (without a hard speedup floor — coverage varies) what the
    fast path buys on a real bundled workload with partial affine
    coverage."""
    wl = get_workload("rgbyuv")
    build = lambda: wl.build_seq(wl.default_scale)[0]  # noqa: E731
    interp_eps, _ = producer_eps(build, False)
    fast_eps, batch = producer_eps(build, True)
    emit(
        "producer_throughput_rgbyuv.txt",
        f"interpreted producer: {interp_eps:12.0f} events/s\n"
        f"fast-path producer  : {fast_eps:12.0f} events/s\n"
        f"speedup             : {fast_eps / interp_eps:12.1f}x"
        f"  ({len(batch)} events)\n",
    )
    assert fast_eps > 0.8 * interp_eps  # must never cost throughput
