"""Throughput of the trace producer's affine fast path (not a paper artifact).

The producer fast path executes classified affine MiniVM loops as whole
iteration-space array operations and bulk-emits their trace rows.  This
bench records producer throughput with the fast path on and off into the
``engine`` suite record so regressions in either path are visible, declares
the >=5x floor on the speedup metric itself (the CI gate enforces it via
``ddprof bench compare``), and folds the producer's own telemetry counters
(fast-path event share) into the same record via the run report.
"""

import numpy as np

from repro.minivm import ProgramBuilder, run_program
from repro.obs import MetricsRegistry, RunReport, repeat_timed
from repro.workloads import get_workload

N = 20000


def affine_dominated_program():
    """Three streaming affine loops over int arrays — the shape the fast
    path is built for (fill, map, elementwise combine)."""
    pb = ProgramBuilder("affine-bench")
    a = pb.global_array("a", N)
    b = pb.global_array("b", N)
    c = pb.global_array("c", N)
    with pb.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, N):
            f.store(a, i, i * 3)
        with f.for_loop(i, 0, N):
            f.store(b, i, f.load(a, i) + 7)
        with f.for_loop(i, 0, N):
            f.store(c, i, f.load(a, i) * f.load(b, i))
    return pb.build()


def producer_eps(build, fastpath, repeats=2, warmup=1, registry=None):
    """Median events/s of the producer over ``build()``'s program, plus the
    last produced batch (shared warmup/repeat policy)."""
    timed = repeat_timed(
        lambda: run_program(build(), fastpath=fastpath, registry=registry),
        repeats=repeats,
        warmup=warmup,
    )
    eps = [len(b) / s for b, s in zip(timed.results, timed.seconds)]
    return sorted(eps)[len(eps) // 2], eps, timed.last


def test_affine_fastpath_speedup(benchmark, bench_record):
    """The fast path must beat the tree-walking producer by >=5x on an
    affine-dominated workload, while producing a bit-identical trace."""
    build = affine_dominated_program
    reg = MetricsRegistry()
    interp_med, interp_eps, interp_batch = producer_eps(build, False)
    fast_med, fast_eps, fast_batch = producer_eps(build, True, registry=reg)
    for col in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
        assert np.array_equal(
            getattr(fast_batch, col), getattr(interp_batch, col)
        ), col
    bench_record.record(
        "producer.interpreted_eps", samples=interp_eps, unit="events/s",
        direction="higher", warmup=1,
    )
    bench_record.record(
        "producer.fastpath_eps", samples=fast_eps, unit="events/s",
        direction="higher", warmup=1,
    )
    speedup = fast_med / interp_med
    bench_record.record(
        "producer.fastpath_speedup", speedup, unit="x", direction="higher",
        floor=5.0, events=len(fast_batch),
    )
    # The producer's own counters ride the same record: on this workload
    # the affine fast path must carry essentially every emitted event.
    report = RunReport.build(reg, workload="affine-bench")
    recs = bench_record.record_run_report(report, "producer.affine_bench")
    frac = next(r for r in recs if r.id.endswith("fastpath_fraction"))
    assert frac.value > 0.9, f"fast path covered only {frac.value:.1%}"
    assert speedup >= 5.0, (
        f"affine fast path only {speedup:.1f}x over the interpreter "
        f"(needs >=5x on affine-dominated loops)"
    )
    benchmark.pedantic(
        lambda: producer_eps(build, True, repeats=1, warmup=0),
        rounds=3,
        iterations=1,
    )


def test_bundled_workload_coverage(benchmark, bench_record):
    """Record (without a hard speedup floor — coverage varies) what the
    fast path buys on a real bundled workload with partial affine
    coverage."""
    wl = get_workload("rgbyuv")
    build = lambda: wl.build_seq(wl.default_scale)[0]  # noqa: E731
    interp_med, interp_eps, _ = producer_eps(build, False)
    fast_med, fast_eps, batch = producer_eps(build, True)
    bench_record.record(
        "producer.rgbyuv_interpreted_eps", samples=interp_eps,
        unit="events/s", direction="higher", warmup=1,
    )
    bench_record.record(
        "producer.rgbyuv_fastpath_eps", samples=fast_eps, unit="events/s",
        direction="higher", warmup=1, events=len(batch),
    )
    ratio = fast_med / interp_med
    bench_record.record(
        "producer.rgbyuv_fastpath_ratio", ratio, unit="x", direction="higher",
        floor=0.8,  # partial coverage, but the fast path must never cost us
    )
    assert ratio > 0.8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
