"""Shared fixtures for the experiment harness.

Every module regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Artifacts are written to ``benchmarks/results/`` and
echoed to stdout; assertions encode the *shape* each paper artifact must
show (who wins, by roughly what factor, where the outliers sit).

Traces are produced once per session through the workload trace cache, so
the timed portions measure profiling, not target execution — the same
separation the paper's overhead numbers use.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write an artifact file and echo it."""

    def _emit(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text)
        print(f"\n=== {name} ===\n{text}")
        return path

    return _emit


@pytest.fixture
def metrics_registry(tmp_path, request):
    """A metrics registry writing its event stream to a throwaway file.

    Pass it as ``registry=`` to any profiler; span/sample/snapshot events
    are written to ``<tmp_path>/<test_name>.metrics.jsonl``.  Tests that
    need the stream read it back via ``reg.sink.path``; nothing lands in
    ``benchmarks/results/`` (checked-in artifacts are the curated ``*.txt``
    / ``*.csv`` tables only).
    """
    from repro.obs import JsonlSink, MetricsRegistry

    path = tmp_path / f"{request.node.name}.metrics.jsonl"
    reg = MetricsRegistry(JsonlSink(path))
    yield reg
    reg.emit({"type": "snapshot", **reg.snapshot()})
    reg.close()


@pytest.fixture(scope="session")
def starbench_names():
    from repro.workloads import workload_names

    return workload_names("starbench")


@pytest.fixture(scope="session")
def nas_names():
    from repro.workloads import workload_names

    return workload_names("nas")


@pytest.fixture(scope="session")
def all_seq_names(nas_names, starbench_names):
    return nas_names + starbench_names
