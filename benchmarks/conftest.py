"""Shared fixtures for the experiment harness.

Every module regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and reports its measured numbers into the structured
benchmark record: the session-scoped :class:`~repro.obs.bench.BenchSession`
writes one schema-versioned ``BENCH_<suite>.json`` per suite at the repo
root (gitignored — the committed baselines live in ``benchmarks/baseline/``)
and appends each run to the ``benchmarks/history.jsonl`` trajectory.  The
curated ``.txt``/``.csv`` tables under ``benchmarks/results/`` are rendered
*from* those structured records via :meth:`BenchRecorder.table`, never
written as a separate source of truth; volatile wall-clock artifacts stay
out of git entirely (see ``.gitignore``).

Traces are produced once per session through the workload trace cache, so
the timed portions measure profiling, not target execution — the same
separation the paper's overhead numbers use.  All timing goes through
:func:`repro.obs.bench.repeat_timed` (``time.perf_counter`` + a shared
warmup/repeat policy) so recorded medians are comparable across modules.

Environment knobs (used by ``ddprof bench run``):

* ``DDPROF_BENCH_OUT`` — directory for the ``BENCH_*.json`` files
  (default: the repo root);
* ``DDPROF_BENCH_TS`` — injected ISO timestamp shared by every record of
  the run (default: sampled once at session start, then injected).
"""

from __future__ import annotations

import datetime
import os
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent
ROOT = BENCHMARKS.parent
RESULTS = BENCHMARKS / "results"


def _suite_of(module_file: str) -> str:
    """This module's suite, from the same table ``ddprof bench run`` uses."""
    from repro.cli import BENCH_SUITES

    name = Path(module_file).name
    for suite, modules in BENCH_SUITES.items():
        if name in modules:
            return suite
    raise LookupError(
        f"{name} is not assigned to a bench suite — add it to "
        f"repro.cli.BENCH_SUITES"
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


@pytest.fixture(scope="session")
def bench_session():
    """One structured benchmark record per suite, flushed at session end."""
    from repro.obs import BenchSession

    out_dir = Path(os.environ.get("DDPROF_BENCH_OUT", ROOT))
    ts = os.environ.get("DDPROF_BENCH_TS") or datetime.datetime.now(
        datetime.timezone.utc
    ).isoformat(timespec="seconds")
    session = BenchSession(
        out_dir,
        results_dir=RESULTS,
        history_path=BENCHMARKS / "history.jsonl",
        timestamp=ts,
        echo=True,
    )
    yield session
    for path in session.finish():
        print(f"\nwrote {path}")


@pytest.fixture
def bench_record(bench_session, request):
    """The requesting module's suite recorder.

    ``bench_record.record(id, ...)`` / ``.measure(id, fn, ...)`` add
    metrics; ``.table(name, headers, rows, csv=True)`` keeps the structured
    rows *and* renders the curated ``benchmarks/results/<name>.txt``/
    ``.csv``; ``.text(name, text)`` writes free-form curated artifacts
    (matrices, bar charts).  Everything is echoed to stdout.
    """
    return bench_session.recorder(_suite_of(request.module.__file__))


@pytest.fixture
def metrics_registry(tmp_path, request):
    """A metrics registry writing its event stream to a throwaway file.

    Pass it as ``registry=`` to any profiler; span/sample/snapshot events
    are written to ``<tmp_path>/<test_name>.metrics.jsonl``.  Tests that
    need the stream read it back via ``reg.sink.path``; nothing lands in
    ``benchmarks/results/`` (checked-in artifacts are the curated ``*.txt``
    / ``*.csv`` tables only).
    """
    from repro.obs import JsonlSink, MetricsRegistry

    path = tmp_path / f"{request.node.name}.metrics.jsonl"
    reg = MetricsRegistry(JsonlSink(path))
    yield reg
    reg.emit({"type": "snapshot", **reg.snapshot()})
    reg.close()


@pytest.fixture(scope="session")
def starbench_names():
    from repro.workloads import workload_names

    return workload_names("starbench")


@pytest.fixture(scope="session")
def nas_names():
    from repro.workloads import workload_names

    return workload_names("nas")


@pytest.fixture(scope="session")
def all_seq_names(nas_names, starbench_names):
    return nas_names + starbench_names
