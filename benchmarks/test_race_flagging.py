"""Section V-B — flagging potential data races from timestamp reversals.

Paper: when the atomicity of access-occurrence and reporting is violated
(no lock keeps the accesses mutually exclusive), pushes may reach a worker
with decreasing timestamps; the dependence is then marked — evidence of a
potential data race after a single run.

Ours: MiniVM's delayed-push model only delays accesses made *outside* lock
regions (Figure 4's contract).  A racy counter must produce flagged
dependences across seeds; a fully locked version of the same program must
never be flagged, under any delay pressure.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)


def build_counter(locked: bool, n_threads=3, increments=12):
    b = ProgramBuilder("counter-locked" if locked else "counter-racy")
    counter = b.global_scalar("counter")
    with b.function("worker", params=("wid",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, increments):
            if locked:
                with f.lock(1):
                    f.set(f.reg("t"), f.load(counter))
                    f.store(counter, None, f.reg("t") + 1)
            else:
                f.set(f.reg("t"), f.load(counter))
                f.store(counter, None, f.reg("t") + 1)
    with b.function("main") as f:
        w = f.reg("w")
        with f.for_loop(w, 0, n_threads):
            f.spawn("worker", w)
        f.join_all()
    return b.build()


def flags_for(program, seed, delay):
    batch = run_program(
        program,
        schedule=ScheduleConfig(
            policy="roundrobin", seed=seed, delay_probability=delay
        ),
    )
    res = profile_trace(batch, PERFECT_MT)
    return res.stats.races_flagged, len(res.store.races())


@pytest.fixture(scope="module")
def race_sweep():
    racy = build_counter(locked=False)
    locked = build_counter(locked=True)
    rows = []
    for seed in range(8):
        r_flags, r_records = flags_for(racy, seed, delay=0.5)
        l_flags, l_records = flags_for(locked, seed, delay=0.5)
        rows.append([seed, r_flags, r_records, l_flags, l_records])
    return rows


HEADERS = ["seed", "racy flags", "racy records", "locked flags", "locked records"]


def test_race_flagging(benchmark, race_sweep, bench_record):
    bench_record.table(
        "race_flagging", HEADERS, race_sweep,
        title="Potential-race detection sweep",
    )
    detected = sum(1 for r in race_sweep if r[1] > 0)
    bench_record.record(
        "race.detection_rate", detected / len(race_sweep), unit="fraction",
        direction="higher", tolerance=0.0, floor=0.5,
    )
    bench_record.record(
        "race.locked_false_flags", sum(r[3] + r[4] for r in race_sweep),
        unit="count", direction="lower", tolerance=0.0, ceiling=0,
    )
    # Shape 1: the locked program is NEVER flagged — Figure 4's lock region
    # makes access+push atomic, so no reversal can exist.
    assert all(r[3] == 0 and r[4] == 0 for r in race_sweep)
    # Shape 2: the racy program is flagged in a majority of schedules — a
    # single run usually suffices (the paper's point versus re-running and
    # hoping for a schedule flip).
    assert detected >= len(race_sweep) // 2
    # Shape 3: flagged records name the contended variable.
    racy = build_counter(locked=False)
    batch = run_program(
        racy,
        schedule=ScheduleConfig(policy="roundrobin", seed=0, delay_probability=0.7),
    )
    res = profile_trace(batch, PERFECT_MT)
    if res.store.races():
        assert all(res.var_name(d.var) == "counter" for d in res.store.races())
    benchmark.pedantic(lambda: flags_for(racy, 0, 0.5), rounds=3, iterations=1)


def test_no_delay_no_flags(benchmark):
    """Without push delays, even the racy program shows ordered timestamps:
    reversals measure the reporting race, not mere concurrency."""
    racy = build_counter(locked=False)
    flags, records = flags_for(racy, seed=0, delay=0.0)
    assert flags == 0 and records == 0
    benchmark.pedantic(lambda: flags_for(racy, 0, 0.0), rounds=3, iterations=1)
