"""Table II — detection of parallelizable loops in NAS (Section VII-A).

Paper: of 147 OpenMP-annotated loops, DiscoPoP's own (perfect) profiling
identifies 136 (92.5%); feeding it our signature profiler's dependences
identifies exactly the same 136 — 0 missed, i.e. the signature introduces
no detection loss when sufficiently large.

Ours: the same three columns over the 8 NAS analogs — annotated ground
truth, identified with the perfect signature (the "DP" column), identified
with an adequately sized array signature (the "sig" column) — plus the
missed count, which must be 0.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import analyze_loops
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def identified_set(batch, meta, config):
    res = profile_trace(batch, config)
    cls = analyze_loops(res)
    return {
        name
        for name, site in meta.annotated_sites().items()
        if site in cls and cls[site].parallelizable
    }


@pytest.fixture(scope="module")
def table2(nas_names):
    rows = []
    per_bench = {}
    for name in nas_names:
        batch, meta = get_trace(name, with_meta=True)
        # "Sufficiently large": collision-free with high probability, i.e.
        # m >> n^2/2 (birthday bound) — a single conflated address pair can
        # fabricate carried dependences in *every* loop sharing the arrays
        # (FT's butterfly stages), so per-lookup FPR is the wrong yardstick
        # here.  Slot counts are virtual in the vectorized engine (keys are
        # hashes; no array is materialized), so the size costs nothing.
        n = batch.n_unique_addresses
        slots = max(1 << 22, 64 * n * n)
        dp = identified_set(batch, meta, PERFECT)
        sig = identified_set(
            batch, meta, ProfilerConfig(signature_slots=slots)
        )
        missed = len(dp - sig)
        rows.append([name.upper(), len(meta.annotated), len(dp), len(sig), missed])
        per_bench[name] = (dp, sig)
    rows.append(
        ["Overall", *(sum(r[c] for r in rows) for c in range(1, 5))]
    )
    return rows, per_bench


HEADERS = ["program", "# OMP", "# identified (DP)", "# identified (sig)", "# missed (sig)"]


def test_table2_loop_detection(benchmark, table2, bench_record):
    rows, per_bench = table2
    bench_record.table(
        "table2_parallel_loops", HEADERS, rows, title="Table II analog",
        csv=True,
    )
    overall = rows[-1]
    bench_record.record(
        "table2.identified_ratio", overall[3] / overall[1], unit="fraction",
        direction="higher", tolerance=0.0, floor=0.85, ceiling=0.98,
    )
    bench_record.record(
        "table2.missed_loops", overall[4], unit="count", direction="lower",
        tolerance=0.0, ceiling=0,
    )
    # Shape 1 (the table's headline): zero missed loops — the signature
    # profiler finds exactly what the perfect profiler finds.
    assert overall[4] == 0
    for name, (dp, sig) in per_bench.items():
        assert dp == sig, f"{name}: signature and perfect disagree"
    # Shape 2: the overall identification ratio sits near the paper's 92.5%.
    ratio = overall[3] / overall[1]
    assert 0.85 <= ratio <= 0.98, ratio
    # Shape 3: identified never exceeds annotated.
    for r in rows:
        assert r[3] <= r[1]
    # Timed kernel: one full profile+classify pass.
    batch, meta = get_trace("mg", with_meta=True)

    def classify():
        res = profile_trace(batch, PERFECT)
        return analyze_loops(res)

    benchmark.pedantic(classify, rounds=3, iterations=1)


def test_table2_undersized_signature_degrades(benchmark):
    """Contrapositive of "sufficiently large": a starved signature fabricates
    carried dependences and loses parallel loops — why Table II insists on
    adequate sizing."""
    batch, meta = get_trace("mg", with_meta=True)
    dp = identified_set(batch, meta, PERFECT)
    tiny = identified_set(batch, meta, ProfilerConfig(signature_slots=64))
    assert len(tiny) < len(dp)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
