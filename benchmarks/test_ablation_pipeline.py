"""Ablations of the pipeline's design choices (DESIGN.md §5).

The paper fixes chunk size, queue depth, and the coupling of producer and
workers implicitly; these sweeps show each choice's effect through the same
measured-pipeline + cost-model path used for Figure 5, plus the cost of the
generality knobs (RAR recording, lifetime analysis).
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import CostParams, estimate_parallel
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def run(batch, **cfg_kwargs):
    cfg = PERFECT.with_(workers=8, **cfg_kwargs)
    result, info = ParallelProfiler(cfg, window=4096).profile(batch)
    return result, info, cfg


def slowdown(batch, params=None, **cfg_kwargs):
    result, info, cfg = run(batch, **cfg_kwargs)
    return estimate_parallel(
        info,
        result.stats.n_accesses,
        len(result.store),
        params=params,
        lock_free=cfg.lock_free_queues,
        queue_depth=cfg.queue_depth,
    ).slowdown


def test_chunk_size_sweep(benchmark, bench_record):
    """Tiny chunks pay handoff per few accesses; huge chunks batch well but
    add imbalance at the tail.  The default (4096) sits on the flat part."""
    batch = get_trace("cg")
    rows = [
        [size, slowdown(batch, chunk_size=size)]
        for size in (16, 64, 256, 1024, 4096)
    ]
    bench_record.table(
        "ablation_chunk_size", ["chunk size", "8T slowdown"], rows,
        title="Chunk-size sweep (cg)",
    )
    by_size = dict((int(s), v) for s, v in rows)
    bench_record.record(
        "ablation.chunk_handoff_penalty", by_size[16] / by_size[4096],
        unit="x", direction="lower", tolerance=0.10,
    )
    # Handoff overhead must be visible at tiny chunks and flat at large.
    assert by_size[16] > by_size[1024]
    assert abs(by_size[1024] - by_size[4096]) / by_size[4096] < 0.10
    benchmark.pedantic(lambda: slowdown(batch, chunk_size=256), rounds=1, iterations=1)


def test_queue_depth_backpressure(benchmark, bench_record):
    """Shallow rings throttle the producer onto the slowest worker; deep
    rings decouple them (at the memory cost Figure 7 charges)."""
    batch = get_trace("ep")  # few hot addresses -> imbalanced workers
    rows = []
    for depth in (1, 2, 8, 32):
        result, info, cfg = run(batch, chunk_size=64, queue_depth=depth)
        est = estimate_parallel(
            info, result.stats.n_accesses, len(result.store),
            queue_depth=depth,
        )
        rows.append([depth, est.slowdown, est.queue_wait_time])
    bench_record.table(
        "ablation_queue_depth", ["queue depth", "8T slowdown", "producer wait"],
        rows, title="Queue-depth sweep (ep)",
    )
    assert rows[0][2] >= rows[-1][2]  # wait shrinks with depth
    assert rows[0][1] >= rows[-1][1] * 0.999  # slowdown never helped by depth 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overlap_coupling_bounds(benchmark, bench_record):
    """The overlap parameter brackets reality: 0 = perfectly pipelined
    (optimistic), 1 = producer and critical worker fully serialized (the
    Amdahl fit of the paper's numbers).  Reported slowdowns must sit within
    these bounds for every coupling in between."""
    batch = get_trace("is")
    rows = []
    for overlap in (0.0, 0.5, 1.0):
        rows.append([
            overlap,
            slowdown(batch, params=CostParams(overlap=overlap), chunk_size=256),
        ])
    bench_record.table(
        "ablation_overlap", ["overlap", "8T slowdown"], rows,
        title="Coupling sweep (is)",
    )
    vals = [v for _, v in rows]
    assert vals[0] <= vals[1] <= vals[2]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_generality_costs(benchmark, bench_record):
    """The paper declines optimizations that would 'decrease the generality
    of the profiler'.  Quantify what generality costs us: RAR recording and
    lifetime analysis each add work but never change the RAW/WAR/WAW sets."""
    from repro.core import DepType, profile_trace
    from repro.obs import repeat_timed

    batch = get_trace("tinyjpeg")
    variants = {
        "default": ProfilerConfig(perfect_signature=True),
        "with RAR": ProfilerConfig(perfect_signature=True, ignore_rar=False),
        "no lifetime": ProfilerConfig(perfect_signature=True, track_lifetime=False),
    }
    rows = []
    results = {}
    for name, cfg in variants.items():
        timed = repeat_timed(lambda: profile_trace(batch, cfg), repeats=3, warmup=1)
        res = results[name] = timed.last
        rows.append([name, len(res.store), res.store.instances, timed.median * 1000])
    bench_record.table(
        "ablation_generality", ["variant", "merged deps", "instances", "ms"],
        rows, title="Generality knobs (tinyjpeg)",
    )
    bench_record.record(
        "ablation.rar_cost_ratio", rows[1][3] / rows[0][3], unit="ratio",
        direction="lower",
    )
    strip = lambda res: {
        d.projected() for d in res.store if d.dep_type is not DepType.RAR
    }
    # RAR adds records without disturbing the default set.
    assert strip(results["with RAR"]) == strip(results["default"])
    assert len(results["with RAR"].store) > len(results["default"].store)
    benchmark.pedantic(
        lambda: profile_trace(batch, variants["with RAR"]), rounds=3, iterations=1
    )
